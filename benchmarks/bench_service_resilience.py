"""Plan-service resilience under seeded chaos fault campaigns.

Replays planning-request streams through the hardened
:class:`~repro.service.server.PlanService` while deterministic
:class:`~repro.faults.plan.FaultPlan` schedules (the ``chaos`` profile:
injected worker crashes, planner exceptions, slow solves, cache-payload
corruption and persistence I/O errors) fire at the service's hook points —
the shared :func:`~repro.experiments.harness.run_resilience_benchmark`
protocol behind ``repro serve-bench --fault-profile``.

Two fixed campaigns together exercise every fault kind: seed 3 is crash- and
error-heavy (worker crashes with respawn, retry exhaustion, one request
served through the degradation ladder's reference tier, injected persistence
failures), seed 6 adds cache-payload corruption (checksum quarantine) and
slow solves.

Gated at 0.0% drift:

* **availability** — every request of both campaigns must resolve with a
  plan (retry + degradation ladder), despite the faults;
* **plan integrity** — every served plan must be byte-identical (modulo the
  wall-clock planning report) to the fault-free solve of the same workload;
* **determinism** — replaying a campaign with the same seed must produce a
  byte-identical canonical report (same outcomes, tiers, fault counts,
  everything) *and* a byte-identical telemetry journal;
* **attribution** — the journal must account for 100% of the requests
  (every lifecycle opened by ``request.submitted`` and closed by
  ``request.resolved``, no orphan events), and its per-request fault census
  must agree exactly with the injector's own counters;
* the full outcome/tier/fault/persistence census of both campaigns.

Wall-clock elapsed time is informational (the injected backoffs and stalls
make it machine- and schedule-dependent).
"""

from bench_utils import emit

from repro.bench import informational, invariant, register_benchmark
from repro.experiments.harness import run_resilience_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload
from repro.obs import TelemetryJournal, attribution_report

NUM_REQUESTS = 30
NUM_UNIQUE = 12
#: Crash-heavy campaign (drives the degradation ladder) and the
#: corruption-heavy campaign; see the module docstring.
CRASH_SEED = 3
CORRUPTION_SEED = 6


@register_benchmark(
    "service_resilience",
    figure=None,
    stage="service",
    tags=("service", "resilience", "smoke"),
    description="Resilient plan service under seeded chaos fault campaigns",
)
def bench_service_resilience(ctx):
    workload = clip_workload(6, 16)
    ctx.tasks(workload)  # record the workload fingerprint for the result

    def campaign(seed):
        journal = TelemetryJournal()
        result = run_resilience_benchmark(
            workload,
            num_requests=NUM_REQUESTS,
            num_unique=NUM_UNIQUE,
            profile="chaos",
            seed=seed,
            journal=journal,
        )
        return result, journal

    crash, crash_journal = campaign(CRASH_SEED)
    # Same seed ⇒ byte-identical report and byte-identical journal.
    crash_replay, crash_replay_journal = campaign(CRASH_SEED)
    corruption, corruption_journal = campaign(CORRUPTION_SEED)

    for label, result in (("crash", crash), ("corruption", corruption)):
        emit(
            f"service_resilience_{label}",
            format_table(
                ["metric", "value"],
                result.as_rows(),
                title=f"plan service resilience ({label} campaign, "
                f"{workload.describe()})",
            ),
        )

    # Journal attribution: every request accounted for, and the journal's
    # fault census (request-attributed plus store-scoped) must agree with
    # the injector's counters, kind by kind.
    attributions = [
        attribution_report(journal.events())
        for journal in (crash_journal, corruption_journal)
    ]

    def census_matches(result, report) -> bool:
        for kind, count in result.fault_counts.items():
            journaled = report["faults"].get(kind, 0) + report["unattributed"].get(
                kind, 0
            )
            if journaled != count:
                return False
        return True

    attribution_complete = min(
        report["complete"] / report["requests"] if report["requests"] else 0.0
        for report in attributions
    )
    orphan_events = sum(report["orphan_events"] for report in attributions)
    fault_census_ok = all(
        census_matches(result, report)
        for result, report in zip((crash, corruption), attributions)
    )

    crash_outcomes = crash.outcome_counts()
    total_faults = sum(crash.fault_counts.values()) + sum(
        corruption.fault_counts.values()
    )
    return {
        "availability": invariant(
            min(crash.availability, corruption.availability), "fraction"
        ),
        "payload_match_rate": invariant(
            min(crash.payload_match_rate, corruption.payload_match_rate),
            "fraction",
        ),
        "deterministic": invariant(
            1.0 if crash.signature() == crash_replay.signature() else 0.0, "bool"
        ),
        "journal_deterministic": invariant(
            1.0 if crash_journal.dumps() == crash_replay_journal.dumps() else 0.0,
            "bool",
        ),
        "attribution_complete_rate": invariant(attribution_complete, "fraction"),
        "attribution_orphan_events": invariant(float(orphan_events), ""),
        "fault_census_matches": invariant(
            1.0 if fault_census_ok else 0.0, "bool"
        ),
        "served": invariant(float(crash_outcomes.get("served", 0)), "req"),
        "degraded": invariant(float(crash_outcomes.get("degraded", 0)), "req"),
        "shed": invariant(float(crash_outcomes.get("shed", 0)), "req"),
        "failed": invariant(float(crash_outcomes.get("error", 0)), "req"),
        "faults_injected": invariant(float(total_faults), ""),
        "worker_crashes": invariant(
            float(crash.fault_counts["worker_crash"]), ""
        ),
        "cache_corruptions_quarantined": invariant(
            float(corruption.corruptions_quarantined), ""
        ),
        "persist_failures": invariant(
            float(crash.persist_failures + corruption.persist_failures), ""
        ),
        "warm_start_entries": invariant(float(crash.warm_start_loaded), ""),
        "breaker_trips": invariant(
            float(crash.breaker_trips + corruption.breaker_trips), ""
        ),
        "elapsed": informational(
            crash.elapsed_seconds + corruption.elapsed_seconds, "s"
        ),
    }
