"""Plan-service resilience under seeded chaos fault campaigns.

Replays planning-request streams through the hardened
:class:`~repro.service.server.PlanService` while deterministic
:class:`~repro.faults.plan.FaultPlan` schedules (the ``chaos`` profile:
injected worker crashes, planner exceptions, slow solves, cache-payload
corruption and persistence I/O errors) fire at the service's hook points —
the shared :func:`~repro.experiments.harness.run_resilience_benchmark`
protocol behind ``repro serve-bench --fault-profile``.

Two fixed campaigns together exercise every fault kind: seed 3 is crash- and
error-heavy (worker crashes with respawn, retry exhaustion, one request
served through the degradation ladder's reference tier, injected persistence
failures), seed 6 adds cache-payload corruption (checksum quarantine) and
slow solves.

Gated at 0.0% drift:

* **availability** — every request of both campaigns must resolve with a
  plan (retry + degradation ladder), despite the faults;
* **plan integrity** — every served plan must be byte-identical (modulo the
  wall-clock planning report) to the fault-free solve of the same workload;
* **determinism** — replaying a campaign with the same seed must produce a
  byte-identical canonical report (same outcomes, tiers, fault counts,
  everything);
* the full outcome/tier/fault/persistence census of both campaigns.

Wall-clock elapsed time is informational (the injected backoffs and stalls
make it machine- and schedule-dependent).
"""

from bench_utils import emit

from repro.bench import informational, invariant, register_benchmark
from repro.experiments.harness import run_resilience_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload

NUM_REQUESTS = 30
NUM_UNIQUE = 12
#: Crash-heavy campaign (drives the degradation ladder) and the
#: corruption-heavy campaign; see the module docstring.
CRASH_SEED = 3
CORRUPTION_SEED = 6


@register_benchmark(
    "service_resilience",
    figure=None,
    stage="service",
    tags=("service", "resilience", "smoke"),
    description="Resilient plan service under seeded chaos fault campaigns",
)
def bench_service_resilience(ctx):
    workload = clip_workload(6, 16)
    ctx.tasks(workload)  # record the workload fingerprint for the result

    def campaign(seed):
        return run_resilience_benchmark(
            workload,
            num_requests=NUM_REQUESTS,
            num_unique=NUM_UNIQUE,
            profile="chaos",
            seed=seed,
        )

    crash = campaign(CRASH_SEED)
    crash_replay = campaign(CRASH_SEED)  # same seed ⇒ byte-identical report
    corruption = campaign(CORRUPTION_SEED)

    for label, result in (("crash", crash), ("corruption", corruption)):
        emit(
            f"service_resilience_{label}",
            format_table(
                ["metric", "value"],
                result.as_rows(),
                title=f"plan service resilience ({label} campaign, "
                f"{workload.describe()})",
            ),
        )

    crash_outcomes = crash.outcome_counts()
    total_faults = sum(crash.fault_counts.values()) + sum(
        corruption.fault_counts.values()
    )
    return {
        "availability": invariant(
            min(crash.availability, corruption.availability), "fraction"
        ),
        "payload_match_rate": invariant(
            min(crash.payload_match_rate, corruption.payload_match_rate),
            "fraction",
        ),
        "deterministic": invariant(
            1.0 if crash.signature() == crash_replay.signature() else 0.0, "bool"
        ),
        "served": invariant(float(crash_outcomes.get("served", 0)), "req"),
        "degraded": invariant(float(crash_outcomes.get("degraded", 0)), "req"),
        "shed": invariant(float(crash_outcomes.get("shed", 0)), "req"),
        "failed": invariant(float(crash_outcomes.get("error", 0)), "req"),
        "faults_injected": invariant(float(total_faults), ""),
        "worker_crashes": invariant(
            float(crash.fault_counts["worker_crash"]), ""
        ),
        "cache_corruptions_quarantined": invariant(
            float(corruption.corruptions_quarantined), ""
        ),
        "persist_failures": invariant(
            float(crash.persist_failures + corruption.persist_failures), ""
        ),
        "warm_start_entries": invariant(float(crash.warm_start_loaded), ""),
        "breaker_trips": invariant(
            float(crash.breaker_trips + corruption.breaker_trips), ""
        ),
        "elapsed": informational(
            crash.elapsed_seconds + corruption.elapsed_seconds, "s"
        ),
    }
