"""Fig. 12: time cost of Spindle's execution planner.

Measures the wall-clock cost of generating the execution plan for every
workload across 8-64 GPUs.  The paper reports under 3 seconds everywhere; this
is a genuine performance benchmark of the planner implementation, so the
pytest-benchmark timings themselves are the reproduced quantity.
"""

import pytest

from bench_utils import emit

from repro.baselines.spindle_system import SpindleSystem
from repro.bench import Metric, register_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload, qwen_val_workload

SWEEP = (
    [clip_workload(t, g) for t in (4, 7, 10) for g in (8, 16, 32, 64)]
    + [ofasys_workload(t, g) for t in (4, 7) for g in (8, 16, 32, 64)]
    + [qwen_val_workload(g) for g in (8, 16, 32, 64)]
)

#: Planner wall-clock is the quantity this benchmark reproduces, so —
#: unlike the simulated-substrate metrics elsewhere — its timings are gated.
#: The threshold is deliberately loose (a 50% slowdown fails, a 2x speedup
#: classifies as improved) to ride out machine noise while still catching a
#: planner-hot-path regression and crediting deliberate optimizations.
PLANNER_TIME_THRESHOLD = 0.5


@register_benchmark(
    "fig12_planner_cost",
    figure="fig12",
    stage="planning",
    tags=("figure", "planner-cost", "smoke"),
    description="Wall-clock cost of the execution planner across the sweep",
)
def bench_fig12_planner_cost(ctx):
    seconds = []
    for workload in SWEEP:
        system = SpindleSystem(ctx.cluster(workload))
        system.plan(ctx.tasks(workload))
        seconds.append(system.last_planning_seconds)
    return {
        "max_planning_seconds": Metric(
            max(seconds), "s", regression_threshold=PLANNER_TIME_THRESHOLD
        ),
        "mean_planning_seconds": Metric(
            sum(seconds) / len(seconds),
            "s",
            regression_threshold=PLANNER_TIME_THRESHOLD,
        ),
    }


@pytest.mark.parametrize(
    "workload",
    [clip_workload(10, g) for g in (8, 16, 32, 64)]
    + [ofasys_workload(7, 64), qwen_val_workload(64)],
    ids=lambda w: w.name,
)
def test_fig12_planner_time(benchmark, workload):
    cluster = workload.cluster()
    tasks = workload.tasks()
    system = SpindleSystem(cluster)
    benchmark(lambda: system.plan(tasks))
    assert system.last_planning_seconds < 3.0


def test_fig12_planner_cost_sweep(benchmark):
    benchmark.pedantic(
        lambda: SpindleSystem(SWEEP[0].cluster()).plan(SWEEP[0].tasks()),
        rounds=1,
        iterations=1,
    )
    rows = []
    worst = 0.0
    for workload in SWEEP:
        system = SpindleSystem(workload.cluster())
        system.plan(workload.tasks())
        seconds = system.last_planning_seconds
        worst = max(worst, seconds)
        rows.append([workload.name, f"{seconds * 1e3:.0f} ms"])
    emit(
        "fig12_planner_cost",
        format_table(
            ["workload", "planning time"],
            rows,
            title="Fig. 12: execution planner cost (paper: < 3 s)",
        ),
    )
    assert worst < 3.0
