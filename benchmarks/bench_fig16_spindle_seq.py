"""Fig. 16 (Appendix H): system implementation performance of Spindle-Seq.

Spindle-Seq executes the naive decoupled plan through the Spindle engine.  Its
iteration time should match Megatron-LM and DeepSpeed closely (within a few
percent) on every workload, demonstrating that Spindle's gains in Fig. 8 come
from planning, not from implementation differences.
"""

import pytest

from bench_utils import cached_comparison, emit

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_comparison
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload, qwen_val_workload

WORKLOADS = (
    clip_workload(4, 8),
    clip_workload(7, 16),
    clip_workload(10, 32),
    ofasys_workload(4, 8),
    ofasys_workload(7, 16),
    qwen_val_workload(32),
)
SYSTEMS = ("spindle-seq", "megatron-lm", "deepspeed")


@register_benchmark(
    "fig16_spindle_seq",
    figure="fig16",
    stage="simulation",
    tags=("figure", "parity", "smoke"),
    description="Spindle-Seq implementation parity with the SOTA baselines",
)
def bench_fig16_spindle_seq(ctx):
    # Parity quality: how far Spindle-Seq drifts from DeepSpeed (1.0 = exact).
    deviations = []
    metrics = {}
    for workload in (clip_workload(4, 8), ofasys_workload(4, 8)):
        comparison = cached_comparison(ctx, workload, systems=SYSTEMS)
        speedup = comparison.speedup("spindle-seq")
        deviations.append(abs(speedup - 1.0))
        metrics[f"{workload.name}/spindle_seq_speedup"] = Metric(
            speedup, "x", regression_threshold=None
        )
    metrics["max_parity_deviation"] = Metric(max(deviations), "fraction")
    return metrics


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_fig16_spindle_seq_parity(benchmark, workload, once_per_session_cache):
    cache = once_per_session_cache
    comparison = benchmark.pedantic(
        lambda: run_comparison(
            workload,
            systems=SYSTEMS,
            tasks=cache.tasks(workload),
            cluster=cache.cluster(workload),
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, f"{result.iteration_time * 1e3:.1f} ms", f"{comparison.speedup(name):.2f}x"]
        for name, result in comparison.results.items()
    ]
    emit(
        f"fig16_{workload.name}",
        format_table(
            ["system", "iteration time", "vs DeepSpeed"],
            rows,
            title=f"Fig. 16: Spindle-Seq parity, {workload.describe()}",
        ),
    )

    # Parity within a few percent of the SOTA systems (paper: 0.98x-1.07x).
    assert 0.9 <= comparison.speedup("spindle-seq") <= 1.1
