"""Tab. 1b: configuration of the MT MM models used for evaluation."""

from bench_utils import emit

from repro.bench import invariant, register_benchmark
from repro.experiments.reporting import format_table
from repro.models.registry import MODEL_REGISTRY, get_model_info

#: Parameter counts the paper reports (Tab. 1b).
PAPER_PARAMS = {
    "multitask-clip": 1.20e9,
    "ofasys": 0.66e9,
    "qwen-val": 9.25e9,
}


@register_benchmark(
    "tab1b_model_configs",
    figure="tab1b",
    stage="models",
    tags=("table", "models", "smoke"),
    description="Parameter counts of the model zoo vs the paper's Tab. 1b",
)
def bench_tab1b_model_configs(ctx):
    # The zoo's parameter counts are part of the reproduction's contract with
    # the paper: drift past 1% in either direction is a regression.
    return {
        f"{key}_params_b": invariant(
            get_model_info(key).parameter_count() / 1e9, "B", threshold=0.01
        )
        for key in sorted(MODEL_REGISTRY)
    }


def test_tab1b_model_configurations(benchmark):
    params = benchmark.pedantic(
        lambda: {key: get_model_info(key).parameter_count() for key in MODEL_REGISTRY},
        rounds=1,
        iterations=1,
    )
    rows = []
    for key, info in MODEL_REGISTRY.items():
        rows.append(
            [
                info.name,
                f"{params[key] / 1e9:.2f} B (paper: {PAPER_PARAMS[key] / 1e9:.2f} B)",
                info.num_modalities,
                info.max_tasks,
                info.cross_modal_module,
            ]
        )
    emit(
        "tab1b_model_configs",
        format_table(
            ["MT MM model", "# Param.", "# Modalities", "# Tasks", "Cross-Modal Module"],
            rows,
            title="Tab. 1b: configuration of MT MM models for evaluation",
        ),
    )

    for key, expected in PAPER_PARAMS.items():
        assert abs(params[key] - expected) / expected < 0.2
