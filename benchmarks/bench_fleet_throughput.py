"""Fleet throughput: fingerprint-sharded serving vs a single-service reference.

Replays a flash-crowd request stream at 10x the ``bench_service_throughput``
volume through the two-phase :func:`~repro.experiments.load_replay.
run_load_replay` protocol: a live 2-shard :class:`~repro.service.fleet.
PlanServiceFleet` serves the stream under multi-threaded closed clients with
every unique payload verified byte-identical (canonically) against an
uncached single-planner reference, then the identical arrival schedule is
replayed in deterministic virtual time for 1/2/4/8 shards.

The gated metrics all come from the virtual-time phase (plus the payload
audit), so they are exact functions of (workload, seed, rate) and hold at
0.0% drift on any machine; wall-clock numbers from the live phase are
informational.  The scaling gate asserts the fleet's simulated throughput
grows >= 2x from 1 to 4 shards.
"""

import pytest

from bench_utils import emit

from repro.bench import Metric, informational, invariant, register_benchmark
from repro.experiments.load_replay import run_load_replay
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload
from repro.obs.slo import SloTracker

WORKLOAD = clip_workload(10, 16)
NUM_REQUESTS = 400  # 10x bench_service_throughput's 40-request stream
NUM_UNIQUE = 48
RATE = 20000.0
SEED = 7


def _campaign(num_requests: int = NUM_REQUESTS, slo: SloTracker | None = None):
    return run_load_replay(
        WORKLOAD,
        num_requests=num_requests,
        num_unique=NUM_UNIQUE,
        rate=RATE,
        scenario="flash-crowd",
        shard_counts=(1, 2, 4, 8),
        real_shards=2,
        seed=SEED,
        slo=slo,
    )


@register_benchmark(
    "fleet_throughput",
    figure=None,
    stage="service",
    tags=("service", "fleet", "throughput", "smoke"),
    description="Sharded plan-service fleet scaling on a flash-crowd replay",
)
def bench_fleet_throughput(ctx):
    ctx.tasks(WORKLOAD)  # record the workload fingerprint for the result
    slo = SloTracker()
    result = _campaign(slo=slo)
    metrics = {
        # Virtual-time phase: deterministic, tightly gated.
        "scaling_1_to_4": Metric(
            result.scaling_ratio(1, 4),
            "x",
            higher_is_better=True,
            regression_threshold=0.05,
        ),
        "scaling_1_to_8": Metric(
            result.scaling_ratio(1, 8),
            "x",
            higher_is_better=True,
            regression_threshold=0.05,
        ),
        "payload_match_rate": invariant(result.payload_match_rate, "fraction"),
        "failed_requests": Metric(
            float(result.failed_requests), "req", regression_threshold=0.0
        ),
        "unique_fingerprints": invariant(float(result.num_unique), "fp"),
        # Live-fleet phase: wall-clock, machine-dependent, informational.
        "real_throughput_rps": informational(result.real_rps, "req/s"),
        "reference_solve_ms": informational(result.reference_solve_ms, "ms"),
    }
    for shards, run in sorted(result.simulated.items()):
        metrics[f"sim_throughput_{shards}shard_rps"] = Metric(
            run.throughput_rps,
            "req/s",
            higher_is_better=True,
            regression_threshold=0.05,
        )
        metrics[f"sim_p99_{shards}shard_ms"] = Metric(
            run.p99_ms, "ms", regression_threshold=0.05
        )
    # Live latency percentiles through the shared SLO rollup (wall-clock).
    slo_report = slo.report()
    metrics["slo_p50_ms"] = informational(
        slo_report.p50_latency_seconds * 1000.0, "ms"
    )
    metrics["slo_p95_ms"] = informational(
        slo_report.p95_latency_seconds * 1000.0, "ms"
    )
    metrics["slo_p99_ms"] = informational(
        slo_report.p99_latency_seconds * 1000.0, "ms"
    )
    return metrics


@pytest.mark.parametrize("num_requests", [NUM_REQUESTS], ids=["flash-crowd"])
def test_fleet_throughput(num_requests):
    result = _campaign(num_requests=num_requests)
    emit(
        "fleet_throughput",
        format_table(
            ["metric", "value"],
            result.as_rows(),
            title=f"plan-service fleet replay ({WORKLOAD.describe()})",
        ),
    )
    # Acceptance: every served payload byte-identical to the reference,
    # no failures, and simulated throughput scaling >= 2x from 1 -> 4 shards.
    assert result.failed_requests == 0
    assert result.payload_match_rate == 1.0
    assert result.num_requests >= 10 * 40
    ratio = result.scaling_ratio(1, 4)
    assert ratio >= 2.0, (
        f"fleet only scaled {ratio:.2f}x from 1 to 4 shards (need >= 2x)"
    )


def test_fleet_replay_deterministic():
    """Same seed -> identical simulated throughputs and latencies."""
    first = _campaign(num_requests=120)
    second = _campaign(num_requests=120)
    for shards in first.simulated:
        a, b = first.simulated[shards], second.simulated[shards]
        assert a.throughput_rps == b.throughput_rps
        assert (a.p50_ms, a.p95_ms, a.p99_ms) == (b.p50_ms, b.p95_ms, b.p99_ms)
        assert (a.solves, a.hits, a.coalesced) == (b.solves, b.hits, b.coalesced)
