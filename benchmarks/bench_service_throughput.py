"""Plan-service throughput: cached/deduplicated serving vs the raw planner.

Replays a synthetic planning-request stream — the overlapping, repetitive
pattern of dynamic workloads and of a multi-tenant planning tier — against the
:class:`~repro.service.server.PlanService` and against one uncached
``ExecutionPlanner.plan()`` call per request (the shared
:func:`~repro.experiments.harness.run_service_benchmark` protocol behind
``repro serve-bench``), and reports throughput, cache hit rate and the
speedup.  The stream has >= 50% repeated workloads; the service must beat the
uncached planner by at least 5x on it.
"""

import pytest

from bench_utils import emit

from repro.bench import Metric, informational, register_benchmark
from repro.experiments.harness import run_service_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload


@register_benchmark(
    "service_throughput",
    figure=None,
    stage="service",
    tags=("service", "throughput", "smoke"),
    description="Caching plan service vs the uncached planner on a request stream",
)
def bench_service_throughput(ctx):
    workload = clip_workload(10, 16)
    ctx.tasks(workload)  # record the workload fingerprint for the result
    result = run_service_benchmark(
        workload, num_requests=40, num_unique=4, num_workers=4
    )
    metrics = {
        "failed_requests": Metric(
            float(result.failed_requests), "req", regression_threshold=0.0
        ),
        "repeated_fraction": Metric(
            result.repeated_fraction, "fraction", higher_is_better=True
        ),
        # The speedup over the uncached planner is wall-clock and varies with
        # the machine and thread scheduling, so it is informational.
        "service_speedup": informational(result.speedup, "x"),
    }
    metrics.update(result.stats.to_metrics())
    return metrics


@pytest.mark.parametrize(
    "label,workload,num_requests,num_unique",
    [
        ("multitask-clip", clip_workload(10, 16), 40, 4),
        ("ofasys", ofasys_workload(7, 16), 40, 4),
    ],
    ids=["multitask-clip", "ofasys"],
)
def test_service_throughput(benchmark, label, workload, num_requests, num_unique):
    result = run_service_benchmark(
        workload, num_requests=num_requests, num_unique=num_unique, num_workers=4
    )
    assert result.failed_requests == 0

    emit(
        f"service_throughput_{label}",
        format_table(
            ["metric", "value"],
            result.as_rows(),
            title=f"plan service throughput ({label}, {workload.describe()})",
        ),
    )

    # One pytest-benchmark timing: the full protocol (uncached reference plus
    # the service run) on the same stream.
    benchmark.pedantic(
        lambda: run_service_benchmark(
            workload, num_requests=num_requests, num_unique=num_unique, num_workers=4
        ),
        rounds=1,
        iterations=1,
    )

    # Acceptance: >= 50% repeats in the stream, >= 5x over the raw planner.
    assert result.repeated_fraction >= 0.5
    assert result.stats.hit_rate >= 0.5
    assert result.speedup >= 5.0, (
        f"plan service only {result.speedup:.1f}x faster than the uncached planner"
    )
