"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` module regenerates one table or figure of the paper's
evaluation: it runs the relevant systems on the relevant workloads, prints the
same rows/series the paper reports, writes them under ``reports/`` (so they
survive pytest's output capturing), and registers one pytest-benchmark timing
for the piece of the pipeline the figure is about.

Each module additionally registers a machine-readable benchmark into the
:mod:`repro.bench` registry via :func:`repro.bench.register_benchmark`: a
function ``(ctx) -> dict[str, Metric]`` the ``repro bench run`` CLI executes
to emit structured ``BENCH_<name>.json`` results CI gates on.  The helpers
here translate the harness's comparison objects into that metric schema.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench import Metric
from repro.experiments.harness import ComparisonResult, run_comparison
from repro.experiments.reporting import format_table, write_report
from repro.experiments.workloads import WorkloadSpec

#: Systems of the Fig. 8 comparison, in the paper's plotting order.
FIG8_SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "megatron-lm", "deepspeed")


def speedup_rows(comparison: ComparisonResult) -> list[list[str]]:
    """Rows of (system, iteration time, speedup over DeepSpeed)."""
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            [
                name,
                f"{result.iteration_time * 1e3:8.1f} ms",
                f"{comparison.speedup(name):.2f}x",
            ]
        )
    return rows


def comparison_table(comparison: ComparisonResult, title: str) -> str:
    return format_table(
        ["system", "iteration time", "speedup vs DeepSpeed"],
        speedup_rows(comparison),
        title=title,
    )


def comparison_metrics(
    comparison: ComparisonResult,
    prefix: str = "",
    systems: Sequence[str] | None = None,
) -> dict[str, Metric]:
    """Iteration time and speedup of each system as gated benchmark metrics.

    All values come from the deterministic simulated substrate, so the default
    regression threshold applies: a PR that slows a system's simulated
    iteration (or erodes Spindle's speedup) past the threshold fails the gate.
    """
    metrics: dict[str, Metric] = {}
    for name in systems if systems is not None else comparison.results:
        result = comparison.results[name]
        metrics[f"{prefix}{name}_iteration_ms"] = Metric(
            result.iteration_time * 1e3, "ms"
        )
        metrics[f"{prefix}{name}_speedup"] = Metric(
            comparison.speedup(name), "x", higher_is_better=True
        )
    return metrics


def emit(report_name: str, text: str) -> None:
    """Print a paper-style table and persist it under ``reports/``."""
    print("\n" + text)
    write_report(report_name, text)


def cached_comparison(
    ctx,
    workload: WorkloadSpec,
    systems: Sequence[str] = FIG8_SYSTEMS,
) -> ComparisonResult:
    """Run a comparison through a bench context's shared workload cache."""
    return run_comparison(
        workload,
        systems=systems,
        tasks=ctx.tasks(workload),
        cluster=ctx.cluster(workload),
    )


def run_grid(
    workloads: Sequence[WorkloadSpec],
    systems: Sequence[str] = FIG8_SYSTEMS,
) -> dict[str, ComparisonResult]:
    """Run a comparison for every workload of a figure's grid."""
    return {
        workload.name: run_comparison(workload, systems=systems)
        for workload in workloads
    }
