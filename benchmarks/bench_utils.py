"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` module regenerates one table or figure of the paper's
evaluation: it runs the relevant systems on the relevant workloads, prints the
same rows/series the paper reports, writes them under ``reports/`` (so they
survive pytest's output capturing), and registers one pytest-benchmark timing
for the piece of the pipeline the figure is about.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ComparisonResult, run_comparison
from repro.experiments.reporting import format_table, write_report
from repro.experiments.workloads import WorkloadSpec

#: Systems of the Fig. 8 comparison, in the paper's plotting order.
FIG8_SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "megatron-lm", "deepspeed")


def speedup_rows(comparison: ComparisonResult) -> list[list[str]]:
    """Rows of (system, iteration time, speedup over DeepSpeed)."""
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            [
                name,
                f"{result.iteration_time * 1e3:8.1f} ms",
                f"{comparison.speedup(name):.2f}x",
            ]
        )
    return rows


def comparison_table(comparison: ComparisonResult, title: str) -> str:
    return format_table(
        ["system", "iteration time", "speedup vs DeepSpeed"],
        speedup_rows(comparison),
        title=title,
    )


def emit(report_name: str, text: str) -> None:
    """Print a paper-style table and persist it under ``reports/``."""
    print("\n" + text)
    write_report(report_name, text)


def run_grid(
    workloads: Sequence[WorkloadSpec],
    systems: Sequence[str] = FIG8_SYSTEMS,
) -> dict[str, ComparisonResult]:
    """Run a comparison for every workload of a figure's grid."""
    return {
        workload.name: run_comparison(workload, systems=systems)
        for workload in workloads
    }
