"""Fig. 9: case study of Multitask-CLIP (4 tasks, 16 GPUs).

Reports (a) the cluster utilization over one iteration for Spindle,
Spindle-Optimus, DistMM-MT and DeepSpeed, and (b) per-device and per-MetaOp
utilization — the spider charts of Fig. 9b.  Spindle should sustain the highest
and most even utilization.
"""

import pytest

from bench_utils import cached_comparison, emit

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_comparison
from repro.experiments.reporting import format_series, format_table
from repro.experiments.workloads import CASE_STUDY_WORKLOAD

SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "deepspeed")


@register_benchmark(
    "fig09_case_study",
    figure="fig09",
    stage="simulation",
    tags=("figure", "utilization", "smoke"),
    description="Cluster/device utilization case study (CLIP, 4 tasks, 16 GPUs)",
)
def bench_fig09_case_study(ctx):
    comparison = cached_comparison(ctx, CASE_STUDY_WORKLOAD, systems=SYSTEMS)

    def mean_device_util(name):
        values = comparison.results[name].trace.device_utilization().values()
        return sum(values) / len(values)

    return {
        "spindle_mean_device_util": Metric(
            mean_device_util("spindle"), "fraction", higher_is_better=True
        ),
        "deepspeed_mean_device_util": Metric(
            mean_device_util("deepspeed"), "fraction", regression_threshold=None
        ),
        "spindle_avg_tflops": Metric(
            comparison.results["spindle"].trace.cluster_average_flops() / 1e12,
            "TFLOP/s",
            higher_is_better=True,
        ),
    }


@pytest.fixture(scope="module")
def case_study():
    return run_comparison(CASE_STUDY_WORKLOAD, systems=SYSTEMS)


def test_fig09a_cluster_utilization_over_time(benchmark, case_study):
    benchmark.pedantic(
        lambda: run_comparison(CASE_STUDY_WORKLOAD, systems=("spindle",)),
        rounds=1,
        iterations=1,
    )
    sections = []
    averages = {}
    for name in SYSTEMS:
        trace = case_study.results[name].trace
        timeline = [(t * 1e3, v / 1e12) for t, v in trace.cluster_timeline(40)]
        averages[name] = trace.cluster_average_flops()
        sections.append(
            f"--- {name} ---\n"
            + format_series(timeline, "time (ms)", "cluster TFLOP/s", max_points=20)
        )
    emit("fig09a_cluster_utilization", "\n\n".join(sections))

    assert averages["spindle"] == max(averages.values())


def test_fig09b_device_and_metaop_utilization(benchmark, case_study):
    benchmark.pedantic(lambda: case_study.results["spindle"].trace.device_utilization(),
                       rounds=1, iterations=1)
    device_rows = []
    cluster = CASE_STUDY_WORKLOAD.cluster()
    for device in range(cluster.num_devices):
        row = [device]
        for name in SYSTEMS:
            util = case_study.results[name].trace.device_utilization()[device]
            row.append(f"{util * 100:.1f}%")
        device_rows.append(row)
    emit(
        "fig09b_device_utilization",
        format_table(
            ["device"] + list(SYSTEMS), device_rows,
            title="Fig. 9b (left): per-device utilization",
        ),
    )

    metaop_rows = []
    spindle_metaops = case_study.results["spindle"].trace.metaop_utilization()
    for metaop_index in sorted(spindle_metaops):
        row = [metaop_index]
        for name in SYSTEMS:
            util = case_study.results[name].trace.metaop_utilization().get(metaop_index)
            row.append("-" if util is None else f"{util * 100:.1f}%")
        metaop_rows.append(row)
    emit(
        "fig09b_metaop_utilization",
        format_table(
            ["MetaOp"] + list(SYSTEMS), metaop_rows,
            title="Fig. 9b (right): per-MetaOp utilization",
        ),
    )

    def mean_device_util(name):
        values = case_study.results[name].trace.device_utilization().values()
        return sum(values) / len(values)

    assert mean_device_util("spindle") > mean_device_util("deepspeed")
    assert mean_device_util("spindle") > mean_device_util("spindle-optimus")
