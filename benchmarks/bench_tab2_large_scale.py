"""Tab. 2 (Appendix E): larger-scale simulations, QWen-VAL 30B/70B on 256 GPUs.

The paper itself resorts to simulation for this scale; here the same simulated
substrate is used for every system.  Spindle should retain a solid (>1.2x)
speedup over DeepSpeed while the other competitors stay close to 1x.
"""

import pytest

from bench_utils import cached_comparison, emit

from repro.bench import Metric, informational, register_benchmark
from repro.experiments.harness import run_comparison
from repro.experiments.reporting import format_table
from repro.experiments.workloads import TAB2_WORKLOADS

SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "deepspeed")


@register_benchmark(
    "tab2_large_scale",
    figure="tab2",
    stage="simulation",
    tags=("table", "large-scale", "smoke"),
    description="256-GPU simulated speedups for QWen-VAL 30B/70B",
)
def bench_tab2_large_scale(ctx):
    metrics = {}
    for workload in TAB2_WORKLOADS:
        comparison = cached_comparison(
            ctx, workload, systems=("spindle", "deepspeed")
        )
        size = workload.model_kwargs["size"]
        metrics[f"qwen_{size}_spindle_speedup"] = Metric(
            comparison.speedup("spindle"), "x", higher_is_better=True
        )
        metrics[f"qwen_{size}_spindle_iteration_ms"] = Metric(
            comparison.iteration_time("spindle") * 1e3, "ms"
        )
        # Planner wall-clock at 256 GPUs: informational (machine-dependent),
        # recorded so planner-hot-path changes show their large-scale effect.
        metrics[f"qwen_{size}_planning_seconds"] = informational(
            comparison.results["spindle"].metadata["planning_seconds"], "s"
        )
    return metrics


@pytest.mark.parametrize("workload", TAB2_WORKLOADS, ids=lambda w: w.name)
def test_tab2_large_scale_speedups(benchmark, workload):
    comparison = benchmark.pedantic(
        lambda: run_comparison(workload, systems=SYSTEMS), rounds=1, iterations=1
    )
    rows = [[name, f"{comparison.speedup(name):.2f}x"] for name in SYSTEMS]
    emit(
        f"tab2_{workload.name}",
        format_table(
            ["system", "speedup over DeepSpeed"],
            rows,
            title=f"Tab. 2: {workload.describe()} ({workload.model_kwargs['size']})",
        ),
    )

    assert comparison.best_system == "spindle"
    # The paper reports 1.34x/1.36x; the simulated substrate keeps a clear but
    # somewhat smaller margin (the baselines' large LLM layers remain efficient
    # at 256 GPUs in our cost model).
    assert comparison.speedup("spindle") > 1.08
    # Task- and tower-level strategies stay far behind Spindle at this scale.
    assert comparison.speedup("spindle-optimus") < comparison.speedup("spindle")
    assert comparison.speedup("distmm-mt") < comparison.speedup("spindle")
