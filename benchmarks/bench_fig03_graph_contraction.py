"""Fig. 3: computation graph -> MetaGraph contraction.

Reports the MetaOp table (operators per MetaOp, operator type, input data
size) for a 2-task example and benchmarks graph contraction on the full
10-task Multitask-CLIP graph.
"""

import time

from bench_utils import emit

from repro.bench import Metric, informational, invariant, register_benchmark
from repro.core.contraction import contract_graph
from repro.experiments.reporting import format_table
from repro.graph.builder import build_unified_graph
from repro.models.multitask_clip import multitask_clip_tasks
from repro.models.qwen_val import qwen_val_tasks


@register_benchmark(
    "fig03_graph_contraction",
    figure="fig03",
    stage="planning",
    tags=("figure", "contraction", "smoke"),
    description="Computation graph -> MetaGraph contraction on 10-task CLIP",
)
def bench_fig03_graph_contraction(ctx):
    graph = build_unified_graph(multitask_clip_tasks(10))
    start = time.perf_counter()
    metagraph = contract_graph(graph)
    contraction_seconds = time.perf_counter() - start
    return {
        # Structural invariants: contraction must keep every operator and
        # collapse the graph to exactly one MetaOp per (task, module) chain;
        # drift in either direction fails the gate.
        "num_metaops": invariant(metagraph.num_metaops),
        "num_operators": invariant(metagraph.num_operators),
        "contraction_ratio": Metric(
            graph.num_operators / metagraph.num_metaops, "x", higher_is_better=True
        ),
        "contraction_seconds": informational(contraction_seconds, "s"),
    }


def test_fig03_metaop_table(benchmark):
    graph = build_unified_graph(qwen_val_tasks(2))
    metagraph = benchmark(lambda: contract_graph(graph))

    rows = []
    for metaop in metagraph.metaops.values():
        rows.append(
            [
                metaop.index,
                metaop.num_operators,
                metaop.op_type,
                str(metaop.input_spec),
                metaop.level,
            ]
        )
    emit(
        "fig03_metagraph",
        format_table(
            ["MetaOp", "operators", "operator type", "input data size", "MetaLevel"],
            rows,
            title="Fig. 3: contracted MetaGraph",
        ),
    )

    assert metagraph.num_operators == graph.num_operators
    assert metagraph.num_metaops < graph.num_operators


def test_fig03_contraction_scales_to_ten_tasks(benchmark):
    graph = build_unified_graph(multitask_clip_tasks(10))
    metagraph = benchmark(lambda: contract_graph(graph))
    # 10 tasks x (2 encoders + 2 projections + 1 loss).
    assert metagraph.num_metaops == 50
    assert metagraph.num_operators == graph.num_operators
