"""Fig. 3: computation graph -> MetaGraph contraction.

Reports the MetaOp table (operators per MetaOp, operator type, input data
size) for a 2-task example and benchmarks graph contraction on the full
10-task Multitask-CLIP graph.
"""

from bench_utils import emit

from repro.core.contraction import contract_graph
from repro.experiments.reporting import format_table
from repro.graph.builder import build_unified_graph
from repro.models.multitask_clip import multitask_clip_tasks
from repro.models.qwen_val import qwen_val_tasks


def test_fig03_metaop_table(benchmark):
    graph = build_unified_graph(qwen_val_tasks(2))
    metagraph = benchmark(lambda: contract_graph(graph))

    rows = []
    for metaop in metagraph.metaops.values():
        rows.append(
            [
                metaop.index,
                metaop.num_operators,
                metaop.op_type,
                str(metaop.input_spec),
                metaop.level,
            ]
        )
    emit(
        "fig03_metagraph",
        format_table(
            ["MetaOp", "operators", "operator type", "input data size", "MetaLevel"],
            rows,
            title="Fig. 3: contracted MetaGraph",
        ),
    )

    assert metagraph.num_operators == graph.num_operators
    assert metagraph.num_metaops < graph.num_operators


def test_fig03_contraction_scales_to_ten_tasks(benchmark):
    graph = build_unified_graph(multitask_clip_tasks(10))
    metagraph = benchmark(lambda: contract_graph(graph))
    # 10 tasks x (2 encoders + 2 projections + 1 loss).
    assert metagraph.num_metaops == 50
    assert metagraph.num_operators == graph.num_operators
