"""Fig. 5: the allocator workflow (5a) and a wavefront execution plan (5b).

Uses a small two-task example (audio-language and vision-language, as in
Fig. 3/5) to show the continuous MPSP optimum, its bi-point discretization,
and the resulting waves with per-wave MetaOp slices.
"""

import time

from bench_utils import emit

from repro.bench import Metric, informational, register_benchmark
from repro.cluster.topology import make_cluster
from repro.core.planner import ExecutionPlanner
from repro.experiments.reporting import format_table
from repro.models.qwen_val import qwen_val_tasks


def _plan():
    cluster = make_cluster(8)
    planner = ExecutionPlanner(cluster)
    return planner.plan(qwen_val_tasks(2))


@register_benchmark(
    "fig05_allocator_and_waves",
    figure="fig05",
    stage="planning",
    tags=("figure", "allocator", "smoke"),
    description="MPSP allocation and wavefront schedule of the 2-task example",
)
def bench_fig05_allocator_and_waves(ctx):
    start = time.perf_counter()
    plan = _plan()
    planning_seconds = time.perf_counter() - start
    c_star = max(a.c_star for a in plan.level_allocations.values())
    return {
        "num_waves": Metric(plan.schedule.num_waves, "waves"),
        "max_level_c_star_ms": Metric(c_star * 1e3, "ms"),
        "compute_makespan_ms": Metric(plan.estimated_compute_makespan * 1e3, "ms"),
        "planning_seconds": informational(planning_seconds, "s"),
    }


def test_fig05a_allocation_plan(benchmark):
    plan = benchmark.pedantic(_plan, rounds=3, iterations=1)

    rows = []
    for level, allocation in plan.level_allocations.items():
        for metaop_index, n_star in allocation.continuous.items():
            metaop = plan.metagraph.metaop(metaop_index)
            tuples = ", ".join(
                f"<n={t.n_devices}, l={t.layers}>"
                for t in allocation.tuples_for(metaop_index)
            )
            rows.append(
                [
                    level,
                    metaop.name[:40],
                    metaop.num_operators,
                    f"{n_star:.2f}",
                    tuples,
                    f"{allocation.c_star * 1e3:.2f} ms",
                ]
            )
    emit(
        "fig05a_allocation_plan",
        format_table(
            ["level", "MetaOp", "L_m", "n* (continuous)", "discretized ASL-tuples", "C*"],
            rows,
            title="Fig. 5a: MPSP optimum and bi-point discretization",
        ),
    )

    # Conditions (10a): every MetaOp's tuples cover all of its operators.
    for allocation in plan.level_allocations.values():
        for metaop_index in allocation.continuous:
            metaop = plan.metagraph.metaop(metaop_index)
            assert allocation.total_layers(metaop_index) == metaop.num_operators


def test_fig05b_wavefront_execution_plan(benchmark):
    plan = benchmark.pedantic(_plan, rounds=3, iterations=1)

    rows = []
    for wave in plan.waves:
        for entry in wave.entries:
            metaop = plan.metagraph.metaop(entry.metaop_index)
            rows.append(
                [
                    wave.index,
                    wave.level,
                    f"{wave.start * 1e3:.2f}",
                    f"{wave.duration * 1e3:.2f}",
                    metaop.name[:40],
                    entry.n_devices,
                    entry.layers,
                    ",".join(str(d) for d in entry.devices),
                ]
            )
    emit(
        "fig05b_execution_plan",
        format_table(
            ["wave", "level", "start (ms)", "span (ms)", "MetaOp", "devices", "ops", "device ids"],
            rows,
            title="Fig. 5b: wavefront execution plan",
        ),
    )

    assert plan.schedule.num_waves >= plan.metagraph.num_levels
    plan.validate()
