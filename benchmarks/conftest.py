"""Benchmark-suite configuration."""

import pytest

from repro.bench.runner import WorkloadCache


def pytest_collection_modifyitems(items):
    """Keep the benchmark suite ordered by figure number for readable output."""
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def once_per_session_cache():
    """Session-wide workload cache: repeated workloads are built once.

    The heavy Fig. 8/11/16 grids revisit the same (model, tasks, GPUs)
    combinations; this shares the built task lists and cluster topologies —
    the same :class:`~repro.bench.runner.WorkloadCache` the ``repro bench``
    runner uses — so each workload is constructed once per pytest session.
    """
    return WorkloadCache()
