"""Benchmark-suite configuration."""

import pytest


def pytest_collection_modifyitems(items):
    """Keep the benchmark suite ordered by figure number for readable output."""
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def once_per_session_cache():
    """A session-wide dict benchmarks can use to avoid recomputing workloads."""
    return {}
