"""Heterogeneous planning: spec-class allocation vs slowest-device pacing.

Plans the Multitask-CLIP workload on mixed-spec clusters (a 2-class and a
3-class topology, the substrates heterogeneous capacity expansion and
straggler demotion produce) twice: with the heterogeneity-aware planner
(per-class scaling curves, spec-class partitioned levels, per-group pacing)
and with ``spec_aware=False`` (the conservative pre-spec-class behaviour that
paces every device group on the cluster's slowest device).  The gated metric
is the simulated-iteration-time speedup of the aware plan over the floor-paced
one — the capacity the classic planner wastes on every mixed cluster.

Everything is deterministic (analytic cost models, no RNG), so the speedups
are exact and tightly gated.
"""

from bench_utils import emit

from repro.bench import Metric, informational, invariant, register_benchmark
from repro.cluster.device import A800_SPEC, DeviceSpec
from repro.cluster.topology import ClusterTopology, make_heterogeneous_cluster
from repro.core.planner import ExecutionPlanner
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload
from repro.runtime.engine import RuntimeEngine

WORKLOAD = clip_workload(4, 16)

#: A mid-generation accelerator: same HBM, ~55% of the A800's sustained rate.
MID_SPEC = DeviceSpec(
    name="MidGPU-80GB",
    peak_flops=170e12,
    memory_bytes=A800_SPEC.memory_bytes,
    achievable_fraction=0.55,
)
#: A previous-generation accelerator at ~30% of the A800's sustained rate.
SLOW_SPEC = DeviceSpec(
    name="OldGPU-80GB",
    peak_flops=95e12,
    memory_bytes=A800_SPEC.memory_bytes,
    achievable_fraction=0.55,
)


def two_class_cluster() -> ClusterTopology:
    """8 fast + 8 mid GPUs: a heterogeneous capacity expansion."""
    return make_heterogeneous_cluster(
        [A800_SPEC, MID_SPEC], devices_per_node=8
    )


def three_class_cluster() -> ClusterTopology:
    """6 fast + 12 mid + 6 slow GPUs across four 6-GPU islands."""
    return make_heterogeneous_cluster(
        [A800_SPEC, MID_SPEC, MID_SPEC, SLOW_SPEC], devices_per_node=6
    )


def _iteration_ms(cluster: ClusterTopology, tasks, spec_aware: bool) -> tuple[float, int]:
    plan = ExecutionPlanner(cluster, spec_aware=spec_aware).plan(tasks)
    result = RuntimeEngine(plan).run_iteration()
    return result.iteration_time * 1e3, plan.report.partitioned_levels


def _measure(tasks) -> dict[str, float]:
    two = two_class_cluster()
    three = three_class_cluster()
    aware2, partitioned2 = _iteration_ms(two, tasks, spec_aware=True)
    floor2, _ = _iteration_ms(two, tasks, spec_aware=False)
    aware3, partitioned3 = _iteration_ms(three, tasks, spec_aware=True)
    floor3, _ = _iteration_ms(three, tasks, spec_aware=False)
    return {
        "aware2": aware2,
        "floor2": floor2,
        "aware3": aware3,
        "floor3": floor3,
        "partitioned2": partitioned2,
        "partitioned3": partitioned3,
    }


@register_benchmark(
    "hetero_planning",
    stage="planning",
    tags=("planning", "elastic", "smoke"),
    description="Spec-class allocation speedup over slowest-device pacing",
)
def bench_hetero_planning(ctx):
    m = _measure(ctx.tasks(WORKLOAD))
    return {
        "two_class_speedup": Metric(
            m["floor2"] / m["aware2"], "x", higher_is_better=True
        ),
        "three_class_speedup": Metric(
            m["floor3"] / m["aware3"], "x", higher_is_better=True
        ),
        "two_class_aware_ms": Metric(m["aware2"], "ms"),
        "three_class_aware_ms": Metric(m["aware3"], "ms"),
        "two_class_partitioned_levels": invariant(
            float(m["partitioned2"]), "levels"
        ),
        "three_class_partitioned_levels": invariant(
            float(m["partitioned3"]), "levels"
        ),
        "two_class_floor_ms": informational(m["floor2"], "ms"),
        "three_class_floor_ms": informational(m["floor3"], "ms"),
    }


def test_hetero_planning(once_per_session_cache):
    tasks = once_per_session_cache.tasks(WORKLOAD)
    m = _measure(tasks)
    emit(
        "hetero_planning",
        format_table(
            ["cluster", "aware", "floor-paced", "speedup"],
            [
                [
                    "2-class (8xA800 + 8xMid)",
                    f"{m['aware2']:.2f} ms",
                    f"{m['floor2']:.2f} ms",
                    f"{m['floor2'] / m['aware2']:.2f}x",
                ],
                [
                    "3-class (6xA800 + 12xMid + 6xOld)",
                    f"{m['aware3']:.2f} ms",
                    f"{m['floor3']:.2f} ms",
                    f"{m['floor3'] / m['aware3']:.2f}x",
                ],
            ],
            title="heterogeneity-aware planning vs slowest-device pacing",
        ),
    )
    # The aware planner must beat floor pacing measurably on both clusters
    # (the fallback comparison guarantees it can never lose).
    assert m["aware2"] < m["floor2"] * 0.95
    assert m["aware3"] < m["floor3"] * 0.95
    # At least one MetaLevel adopted a spec-class partition on each cluster.
    assert m["partitioned2"] >= 1
    assert m["partitioned3"] >= 1
