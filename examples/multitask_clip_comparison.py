#!/usr/bin/env python3
"""Compare Spindle with the baseline systems on Multitask-CLIP.

Reproduces a slice of the paper's end-to-end evaluation (Fig. 8) and case
study (Fig. 9) on the simulated cluster: 4-task Multitask-CLIP on 16 GPUs.

Run with::

    python examples/multitask_clip_comparison.py [num_tasks] [num_gpus]
"""

import sys

from repro.experiments.harness import run_comparison
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload

SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "megatron-lm", "deepspeed")


def main() -> None:
    num_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    num_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    workload = clip_workload(num_tasks, num_gpus)
    print(f"workload: {workload.describe()}")

    comparison = run_comparison(workload, systems=SYSTEMS)

    rows = []
    for name, result in sorted(
        comparison.results.items(), key=lambda item: item[1].iteration_time
    ):
        utilization = result.trace.device_utilization()
        rows.append(
            [
                name,
                f"{result.iteration_time * 1e3:8.1f} ms",
                f"{comparison.speedup(name):.2f}x",
                f"{result.breakdown.fraction('param_sync') * 100:4.1f}%",
                f"{result.breakdown.fraction('send_recv') * 100:4.1f}%",
                f"{sum(utilization.values()) / len(utilization) * 100:4.1f}%",
                f"{result.peak_device_memory_bytes / 1024**3:5.1f} GiB",
            ]
        )
    print(
        format_table(
            [
                "system",
                "iteration",
                "speedup",
                "sync share",
                "send/recv share",
                "avg device util",
                "peak memory",
            ],
            rows,
            title="End-to-end comparison (speedups are relative to DeepSpeed)",
        )
    )

    spindle = comparison.results["spindle"]
    print("\nSpindle cluster utilization over the iteration (TFLOP/s):")
    for t, flops in spindle.trace.cluster_timeline(num_points=10):
        bar = "#" * int(flops / 1e12 / 20)
        print(f"  {t * 1e3:7.2f} ms  {flops / 1e12:8.1f}  {bar}")


if __name__ == "__main__":
    main()
