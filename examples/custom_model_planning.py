#!/usr/bin/env python3
"""Bring your own MT MM model: inspect how Spindle plans it.

Builds a custom three-task multi-modal model (a video-captioning flavoured
workload that is not part of the paper's model zoo) through the SpindleTask /
add_flow API, then walks through each stage of the execution planner: graph
contraction, scaling curves, the per-MetaLevel allocation, the wavefront
schedule and the device placement.

Run with::

    python examples/custom_model_planning.py
"""

from repro import ExecutionPlanner, SpindleTask, make_cluster
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator
from repro.costmodel.flops import LayerConfig, make_projection_op, make_transformer_layer_op
from repro.costmodel.profiler import SyntheticProfiler
from repro.graph.builder import build_unified_graph
from repro.graph.ops import TensorSpec


def encoder(task, modality, layers, batch, seq, hidden, shared_scope):
    spec = TensorSpec(batch=batch, seq_len=seq, hidden=hidden)
    return [
        make_transformer_layer_op(
            name=f"{task}.{modality}.layer{i}",
            op_type=f"{modality}_layer",
            task=task,
            modality=modality,
            spec=spec,
            config=LayerConfig(hidden_size=hidden),
            param_key=f"{shared_scope}.layer{i}",
        )
        for i in range(layers)
    ]


def build_custom_tasks():
    """Three tasks over video, audio and text with a shared decoder LM."""
    specs = [
        ("video_captioning", "vision", 16, 24, 784, 1024),
        ("audio_captioning", "audio", 32, 16, 400, 768),
        ("subtitle_alignment", "text", 64, 8, 128, 512),
    ]
    tasks = []
    for name, modality, batch, enc_layers, seq, hidden in specs:
        task = SpindleTask(name, batch_size=batch)
        task.add_module(
            "encoder", encoder(name, modality, enc_layers, batch, seq, hidden, f"custom.{modality}")
        )
        task.add_module(
            "bridge",
            [
                make_projection_op(
                    name=f"{name}.bridge",
                    op_type=f"{modality}_projection",
                    task=name,
                    modality=modality,
                    spec=TensorSpec(batch=batch, seq_len=1, hidden=hidden),
                    out_dim=1536,
                    param_key=f"custom.{modality}.bridge",
                )
            ],
        )
        task.add_module(
            "decoder_lm", encoder(name, "fusion", 20, batch, 256, 1536, "custom.lm")
        )
        task.add_flow("encoder", "bridge")
        task.add_flow("bridge", "decoder_lm")
        tasks.append(task)
    return tasks


def main() -> None:
    cluster = make_cluster(16)
    tasks = build_custom_tasks()
    graph = build_unified_graph(tasks)
    print(f"unified graph  : {graph.num_operators} operators, {graph.num_flows} flows")

    metagraph = contract_graph(graph)
    print(f"after contraction: {metagraph.num_metaops} MetaOps in "
          f"{metagraph.num_levels} MetaLevels")
    for metaop in metagraph.metaops.values():
        print(
            f"  MetaOp {metaop.index:2d}  level {metaop.level}  "
            f"{metaop.op_type:20s} L={metaop.num_operators:3d}  "
            f"input {metaop.input_spec}"
        )

    print("\nscaling curves (speedup at 16 GPUs, from the scalability estimator):")
    curves = ScalabilityEstimator(SyntheticProfiler(cluster)).estimate(metagraph)
    for index, curve in curves.items():
        metaop = metagraph.metaop(index)
        print(f"  {metaop.task:20s} {metaop.op_type:20s} sigma(16) = {curve.speedup(16):5.2f}")

    plan = ExecutionPlanner(cluster).plan(tasks)
    print(f"\nexecution plan: {plan.schedule.num_waves} waves, "
          f"estimated compute makespan {plan.estimated_compute_makespan * 1e3:.1f} ms "
          f"(theoretical optimum {plan.theoretical_optimum * 1e3:.1f} ms)")
    for wave in plan.waves:
        slices = ", ".join(
            f"{plan.metagraph.metaop(e.metaop_index).task.split('_')[0]}"
            f":{plan.metagraph.metaop(e.metaop_index).modality}"
            f" x{e.layers}@{e.n_devices}gpu"
            for e in wave.entries
        )
        print(f"  wave {wave.index:2d} [{wave.duration * 1e3:6.2f} ms] {slices}")


if __name__ == "__main__":
    main()
