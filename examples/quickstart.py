#!/usr/bin/env python3
"""Quickstart: define two multi-modal tasks, plan them with Spindle, and
simulate one training iteration.

Run with::

    python examples/quickstart.py
"""

from repro import ExecutionPlanner, RuntimeEngine, SpindleTask, make_cluster
from repro.costmodel.flops import (
    LayerConfig,
    make_contrastive_loss_op,
    make_transformer_layer_op,
)
from repro.graph.ops import TensorSpec


def build_encoder(task: str, modality: str, layers: int, batch: int, seq: int, hidden: int):
    """A small modality encoder: a stack of identical transformer layers."""
    spec = TensorSpec(batch=batch, seq_len=seq, hidden=hidden)
    config = LayerConfig(hidden_size=hidden)
    return [
        make_transformer_layer_op(
            name=f"{task}.{modality}.layer{i}",
            op_type=f"{modality}_layer",
            task=task,
            modality=modality,
            spec=spec,
            config=config,
            param_key=f"shared.{modality}.layer{i}",  # shared across tasks
        )
        for i in range(layers)
    ]


def build_tasks():
    """Two CLIP-style contrastive tasks sharing their text encoder."""
    tasks = []
    for name, other_modality, batch in (
        ("image_text_pairing", "vision", 32),
        ("audio_text_pairing", "audio", 64),
    ):
        task = SpindleTask(name, batch_size=batch)
        task.add_module("text_encoder", build_encoder(name, "text", 6, batch, 77, 512))
        task.add_module(
            f"{other_modality}_encoder",
            build_encoder(name, other_modality, 12, batch, 196, 768),
        )
        task.add_module(
            "loss", [make_contrastive_loss_op(f"{name}.loss", name, batch, 512)]
        )
        # The user-facing add_flow API wires model components together (§4).
        task.add_flow("text_encoder", "loss")
        task.add_flow(f"{other_modality}_encoder", "loss")
        tasks.append(task)
    return tasks


def main() -> None:
    cluster = make_cluster(8)
    tasks = build_tasks()

    planner = ExecutionPlanner(cluster)
    plan = planner.plan(tasks)

    print(f"cluster          : {cluster}")
    print(f"tasks            : {[t.name for t in tasks]}")
    print(f"MetaOps          : {plan.metagraph.num_metaops} "
          f"({plan.metagraph.num_operators} operators, "
          f"{plan.metagraph.num_levels} MetaLevels)")
    print(f"waves            : {plan.schedule.num_waves}")
    print(f"planning time    : {plan.report.total_seconds * 1e3:.1f} ms")

    print("\nwavefront schedule:")
    for wave in plan.waves:
        slices = ", ".join(
            f"{plan.metagraph.metaop(e.metaop_index).op_type} x{e.layers} on {e.n_devices} GPUs"
            for e in wave.entries
        )
        print(f"  wave {wave.index:2d} (level {wave.level}): {slices}")

    engine = RuntimeEngine(plan)
    result = engine.run_iteration()
    breakdown = result.breakdown
    print("\nsimulated iteration:")
    print(f"  iteration time : {result.iteration_time * 1e3:.2f} ms")
    print(f"  fwd+bwd        : {breakdown.forward_backward * 1e3:.2f} ms")
    print(f"  param sync     : {breakdown.param_sync * 1e3:.2f} ms")
    print(f"  send/recv      : {breakdown.send_recv * 1e3:.2f} ms")
    print(f"  peak memory    : {result.peak_device_memory_bytes / 1024**3:.1f} GiB/device")


if __name__ == "__main__":
    main()
