#!/usr/bin/env python3
"""Dynamic multi-task training: tasks exit early and join mid-training.

Reproduces the Appendix D scenario: the task set of an OFASys-style workload
changes three times during training; Spindle re-plans at every change and is
compared against DeepSpeed-style decoupled execution and task-level
allocation.

Run with::

    python examples/dynamic_task_arrival.py
"""

from repro.baselines import make_system
from repro.dynamic.workload import DynamicWorkloadRunner, DynamicWorkloadSchedule
from repro.experiments.workloads import ofasys_workload

SYSTEMS = ("spindle", "spindle-optimus", "deepspeed")


def main() -> None:
    workload = ofasys_workload(6, 16)
    cluster = workload.cluster()
    tasks = workload.tasks()

    schedule = DynamicWorkloadSchedule.from_tasks(
        tasks,
        phases=[
            # Warm up with four tasks, then two finish early, then new tasks join.
            (["image_captioning", "speech_recognition", "text_summarization",
              "visual_grounding"], 200),
            (["image_captioning", "speech_recognition"], 150),
            (["image_captioning", "speech_recognition", "text_to_sql",
              "sound_event_detection"], 200),
        ],
    )
    print(f"workload : {workload.describe()}")
    print(f"phases   : {[(p.name, len(p.task_names), p.num_iterations) for p in schedule.phases]}")

    runner = DynamicWorkloadRunner(schedule)
    results = runner.run_all([make_system(name, cluster) for name in SYSTEMS])

    print("\ncumulative training time (seconds) after each phase:")
    header = "iterations".rjust(12) + "".join(name.rjust(18) for name in SYSTEMS)
    print(header)
    curves = {name: dict(result.cumulative_curve()) for name, result in results.items()}
    checkpoints = sorted({i for curve in curves.values() for i in curve})
    for iteration in checkpoints:
        row = f"{iteration:12d}"
        for name in SYSTEMS:
            row += f"{curves[name].get(iteration, float('nan')):18.1f}"
        print(row)

    print("\ntotal training time:")
    for name, result in sorted(results.items(), key=lambda item: item[1].total_time):
        replanning = sum(p.replanning_seconds for p in result.phase_results)
        print(
            f"  {name:16s} {result.total_time:8.1f} s "
            f"(re-planning overhead: {replanning:.2f} s)"
        )


if __name__ == "__main__":
    main()
