#!/usr/bin/env python3
"""Markdown lint + intra-repo link checker for ``docs/`` and the README.

Stdlib-only, run by the CI ``docs`` job (and by ``tests/test_check_docs.py``
against the checked-in tree). Two classes of checks:

* **Lint** — balanced code fences, exactly one H1 per page, heading levels
  that never skip (``##`` to ``####``), and no malformed link syntax
  (``] (`` with a space).
* **Links** — every relative link target must exist in the repository, and
  every ``#fragment`` must match a heading anchor (GitHub slug rules) in the
  target file. External (``http(s)://``, ``mailto:``) links are not fetched.

Exit status: 0 when clean, 1 with one ``file:line: message`` per problem on
stderr otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def default_targets(root: Path) -> list[Path]:
    """The pages the CI job checks: the README plus everything in docs/."""
    pages = [root / "README.md"]
    docs = root / "docs"
    if docs.is_dir():
        pages.extend(sorted(docs.glob("**/*.md")))
    return [page for page in pages if page.is_file()]


def strip_code(lines: list[str]) -> list[str]:
    """Blank out fenced blocks and inline code so their contents aren't
    linted or link-checked (line numbering is preserved)."""
    stripped = []
    in_fence = False
    for line in lines:
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            stripped.append("")
        elif in_fence:
            stripped.append("")
        else:
            stripped.append(re.sub(r"`[^`]*`", "", line))
    return stripped


def github_slug(heading: str) -> str:
    """The anchor GitHub derives from a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep their text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep the label
    text = text.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"[\s]+", "-", text)


def heading_anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    lines = path.read_text(encoding="utf-8").splitlines()
    in_fence = False
    for line in lines:
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(2))
            # GitHub dedupes repeats as slug-1, slug-2, ...; pages here don't
            # repeat headings, so the base slug is enough.
            anchors.add(slug)
    return anchors


def lint_page(path: Path, lines: list[str]) -> list[str]:
    problems = []
    fence_opens = sum(1 for line in lines if line.lstrip().startswith("```"))
    if fence_opens % 2:
        problems.append(f"{path}: unbalanced code fences ({fence_opens} markers)")

    h1_count = 0
    previous_level = 0
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        level = len(match.group(1))
        if level == 1:
            h1_count += 1
        elif previous_level and level > previous_level + 1:
            problems.append(
                f"{path}:{number}: heading skips from H{previous_level} "
                f"to H{level}"
            )
        previous_level = level
    if h1_count != 1:
        problems.append(f"{path}: expected exactly one H1, found {h1_count}")

    for number, line in enumerate(strip_code(lines), start=1):
        if "] (" in line:
            problems.append(
                f"{path}:{number}: space between link text and target (']( ')"
            )
    return problems


def check_links(path: Path, lines: list[str], root: Path) -> list[str]:
    problems = []
    for number, line in enumerate(strip_code(lines), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            file_part, _, fragment = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                try:
                    resolved.relative_to(root.resolve())
                except ValueError:
                    problems.append(
                        f"{path}:{number}: link escapes the repository: "
                        f"{target}"
                    )
                    continue
                if not resolved.exists():
                    problems.append(
                        f"{path}:{number}: broken link target: {target}"
                    )
                    continue
            else:
                resolved = path
            if fragment and resolved.is_file() and resolved.suffix == ".md":
                if fragment.lower() not in heading_anchors(resolved):
                    problems.append(
                        f"{path}:{number}: broken anchor #{fragment} "
                        f"in {target or path.name}"
                    )
    return problems


def check_pages(pages: list[Path], root: Path) -> list[str]:
    problems = []
    for page in pages:
        lines = page.read_text(encoding="utf-8").splitlines()
        problems.extend(lint_page(page, lines))
        problems.extend(check_links(page, lines, root))
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parents[1]
    pages = default_targets(root)
    if not pages:
        print(f"error: no markdown pages found under {root}", file=sys.stderr)
        return 1
    problems = check_pages(pages, root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"FAIL: {len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(pages)} pages clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
