"""Tests for the experiment workload registry."""

import pytest

from repro.experiments.workloads import (
    CASE_STUDY_WORKLOAD,
    FIG10_WORKLOADS,
    FIG11_WORKLOADS,
    FIG12_WORKLOADS,
    FIG14_WORKLOADS,
    TAB2_WORKLOADS,
    WorkloadSpec,
    clip_workload,
    fig8_workloads,
    ofasys_workload,
    planning_request_stream,
    qwen_val_workload,
)


class TestWorkloadSpec:
    def test_tasks_and_cluster_construction(self):
        spec = clip_workload(4, 16)
        tasks = spec.tasks()
        cluster = spec.cluster()
        assert len(tasks) == 4
        assert cluster.num_devices == 16
        assert "multitask-clip" in spec.name
        assert "16 GPUs" in spec.describe()

    def test_model_kwargs_forwarded(self):
        spec = qwen_val_workload(32, size="30b")
        tasks = spec.tasks()
        assert len(tasks) == 3
        assert "size30b" in spec.name

    def test_specs_are_hashable_and_comparable(self):
        assert clip_workload(4, 16) == clip_workload(4, 16)
        assert clip_workload(4, 16) != clip_workload(7, 16)
        assert len({clip_workload(4, 16), clip_workload(4, 16)}) == 1


class TestPaperGrids:
    def test_fig8_grid_matches_paper(self):
        workloads = fig8_workloads()
        clip = [w for w in workloads if w.model == "multitask-clip"]
        ofasys = [w for w in workloads if w.model == "ofasys"]
        qwen = [w for w in workloads if w.model == "qwen-val"]
        assert len(clip) == 9       # {4,7,10} tasks x {8,16,32} GPUs
        assert len(ofasys) == 6     # {4,7} tasks x {8,16,32} GPUs
        assert len(qwen) == 2       # 3 tasks x {32,64} GPUs
        assert {w.num_gpus for w in qwen} == {32, 64}

    def test_case_study_workload(self):
        assert CASE_STUDY_WORKLOAD.model == "multitask-clip"
        assert CASE_STUDY_WORKLOAD.num_tasks == 4
        assert CASE_STUDY_WORKLOAD.num_gpus == 16

    def test_fig10_covers_all_three_models(self):
        models = {w.model for w in FIG10_WORKLOADS}
        assert models == {"multitask-clip", "ofasys", "qwen-val"}

    def test_fig11_uses_clip_on_16_and_32_gpus(self):
        assert {w.num_gpus for w in FIG11_WORKLOADS} == {16, 32}
        assert {w.num_tasks for w in FIG11_WORKLOADS} == {4, 7, 10}

    def test_fig12_covers_the_gpu_sweep(self):
        assert {w.num_gpus for w in FIG12_WORKLOADS} == {8, 16, 32, 64}

    def test_fig14_is_single_task(self):
        assert all(w.num_tasks == 1 for w in FIG14_WORKLOADS)

    def test_tab2_is_large_scale(self):
        assert all(w.num_gpus == 256 for w in TAB2_WORKLOADS)
        sizes = {w.model_kwargs["size"] for w in TAB2_WORKLOADS}
        assert sizes == {"30b", "70b"}

    def test_ofasys_workload_builder(self):
        spec = ofasys_workload(7, 8)
        assert isinstance(spec, WorkloadSpec)
        assert len(spec.tasks()) == 7


class TestPlanningRequestStream:
    def test_stream_shape_and_determinism(self, tiny_tasks):
        stream, unique = planning_request_stream(tiny_tasks, 10, 2, seed=7)
        assert len(stream) == 10
        assert unique == 2
        assert len({id(req) for req in stream}) == unique  # interned task sets
        again, _ = planning_request_stream(tiny_tasks, 10, 2, seed=7)
        assert [len(req) for req in stream] == [len(req) for req in again]

    def test_unique_count_clamped(self, tiny_tasks):
        stream, unique = planning_request_stream(tiny_tasks, 4, 99, seed=0)
        assert unique == len(tiny_tasks)
        assert all(req for req in stream)
        with pytest.raises(ValueError):
            planning_request_stream(tiny_tasks, 0, 1)
