"""Tests for deterministic fault schedules (repro.faults.plan)."""

import pytest

from repro.faults import (
    CACHE_CORRUPTION,
    FAULT_KINDS,
    FAULT_PROFILES,
    PERSIST_ERROR,
    PLANNER_ERROR,
    SLOW_SOLVE,
    WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    FaultProfile,
)


class TestFaultProfile:
    def test_rates_validated(self):
        with pytest.raises(FaultPlanError):
            FaultProfile(name="bad", worker_crash_rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultProfile(name="bad", cache_corruption_rate=-0.1)
        with pytest.raises(FaultPlanError):
            FaultProfile(name="bad", slow_solve_seconds=-1.0)
        with pytest.raises(FaultPlanError):
            FaultProfile(name="bad", max_fail_attempts=0)

    def test_named_profiles_present(self):
        assert set(FAULT_PROFILES) >= {"none", "mild", "chaos"}
        none = FAULT_PROFILES["none"]
        assert all(
            getattr(none, f"{field}_rate" if field != "slow_solve" else "slow_solve_rate") == 0.0
            for field in ("worker_crash", "planner_error", "slow_solve")
        )

    def test_chaos_meets_the_acceptance_floor(self):
        chaos = FAULT_PROFILES["chaos"]
        assert chaos.worker_crash_rate >= 0.10
        assert chaos.cache_corruption_rate >= 0.05
        assert chaos.slow_solve_rate > 0.0

    def test_canonical_dict_round_trips_fields(self):
        profile = FAULT_PROFILES["mild"]
        document = profile.canonical_dict()
        assert document["name"] == "mild"
        assert document["worker_crash_rate"] == profile.worker_crash_rate
        assert FaultProfile(**document) == profile


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(index=0, kind="meteor_strike")
        with pytest.raises(FaultPlanError):
            FaultEvent(index=-1, kind=WORKER_CRASH)
        with pytest.raises(FaultPlanError):
            FaultEvent(index=0, kind=WORKER_CRASH, attempts=0)
        with pytest.raises(FaultPlanError):
            FaultEvent(index=0, kind=SLOW_SOLVE, delay_seconds=-0.1)


class TestGeneration:
    def test_same_inputs_same_schedule(self):
        chaos = FAULT_PROFILES["chaos"]
        a = FaultPlan.generate(chaos, 50, seed=11)
        b = FaultPlan.generate(chaos, 50, seed=11)
        assert a.signature() == b.signature()
        assert a.canonical_dict() == b.canonical_dict()

    def test_different_seed_different_schedule(self):
        chaos = FAULT_PROFILES["chaos"]
        a = FaultPlan.generate(chaos, 50, seed=11)
        b = FaultPlan.generate(chaos, 50, seed=12)
        assert a.signature() != b.signature()

    def test_schedule_depends_on_profile_and_length(self):
        chaos = FAULT_PROFILES["chaos"]
        mild = FAULT_PROFILES["mild"]
        assert (
            FaultPlan.generate(chaos, 50, seed=0).signature()
            != FaultPlan.generate(mild, 50, seed=0).signature()
        )
        assert (
            FaultPlan.generate(chaos, 50, seed=0).signature()
            != FaultPlan.generate(chaos, 51, seed=0).signature()
        )

    def test_none_profile_generates_nothing(self):
        plan = FaultPlan.generate(FAULT_PROFILES["none"], 100, seed=0)
        assert len(plan) == 0

    def test_negative_request_count_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(FAULT_PROFILES["none"], -1)


class TestLookups:
    def _plan(self):
        return FaultPlan(
            [
                FaultEvent(index=0, kind=WORKER_CRASH, attempts=2),
                FaultEvent(index=0, kind=PLANNER_ERROR, attempts=1),
                FaultEvent(index=1, kind=SLOW_SOLVE, delay_seconds=0.25),
                FaultEvent(index=2, kind=CACHE_CORRUPTION),
                FaultEvent(index=1, kind=PERSIST_ERROR),
            ]
        )

    def test_crash_attempts_scheduled_before_error_attempts(self):
        plan = self._plan()
        assert plan.failing_kind(0, 0) == WORKER_CRASH
        assert plan.failing_kind(0, 1) == WORKER_CRASH
        assert plan.failing_kind(0, 2) == PLANNER_ERROR
        assert plan.failing_kind(0, 3) is None
        assert plan.fail_attempts(0) == 3

    def test_unscheduled_requests_are_clean(self):
        plan = self._plan()
        assert plan.failing_kind(7, 0) is None
        assert plan.fail_attempts(7) == 0
        assert plan.delay_for(7) == 0.0
        assert not plan.corrupts_cache(7)

    def test_delay_corruption_and_persist_lookups(self):
        plan = self._plan()
        assert plan.delay_for(1) == pytest.approx(0.25)
        assert plan.corrupts_cache(2)
        assert plan.persist_fails(1)
        assert not plan.persist_fails(0)

    def test_events_sorted_canonically(self):
        plan = self._plan()
        keys = [(e.index, FAULT_KINDS.index(e.kind)) for e in plan.events]
        assert keys == sorted(keys)
