"""Plan-migration cost model: placement diffs, transfers and restores."""

import pytest

from repro.cluster.device import A800_SPEC
from repro.core.planner import ExecutionPlanner
from repro.elastic.events import (
    DEVICE_FAILURE,
    NODE_JOIN,
    ClusterEvent,
)
from repro.elastic.migration import MigrationCostModel
from repro.elastic.view import ElasticClusterView
from tests.conftest import make_chain_task


@pytest.fixture
def tasks():
    return [
        make_chain_task("audio_task", {"audio": 3, "lm": 3}, batch=8,
                        shared_prefix="shared"),
        make_chain_task("vision_task", {"vision": 2, "lm": 3}, batch=4,
                        shared_prefix="shared"),
    ]


def plan_on(snapshot, tasks):
    return ExecutionPlanner(snapshot.topology).plan(tasks)


def make_view():
    return ElasticClusterView(num_nodes=2, devices_per_node=4, device_spec=A800_SPEC)


class TestMigrationCostModel:
    def test_identical_plans_cost_nothing(self, tasks):
        view = make_view()
        snapshot = view.snapshot()
        plan = plan_on(snapshot, tasks)
        report = MigrationCostModel().assess(plan, snapshot, plan, snapshot)
        assert report.total_bytes == 0.0
        assert report.total_seconds == 0.0
        assert report.groups == []

    def test_failure_migration_moves_or_restores_state(self, tasks):
        view = make_view()
        old_snapshot = view.snapshot()
        old_plan = plan_on(old_snapshot, tasks)
        view.apply(ClusterEvent(DEVICE_FAILURE, at_iteration=1, node=0, device=0))
        new_snapshot = view.snapshot()
        new_plan = plan_on(new_snapshot, tasks)
        report = MigrationCostModel().assess(
            old_plan, old_snapshot, new_plan, new_snapshot
        )
        assert report.total_bytes > 0
        assert report.total_seconds > 0
        # Device groups in the report live in the NEW topology's id space.
        for group in report.groups:
            for device in group.source_devices + group.target_devices:
                assert 0 <= device < new_snapshot.topology.num_devices

    def test_total_state_loss_restores_from_checkpoint(self, tasks):
        view = make_view()
        old_snapshot = view.snapshot()
        old_plan = plan_on(old_snapshot, tasks)
        # Fail every device the old plan ran on except a fresh joined node:
        # all original holders vanish, so state must come from the checkpoint.
        view.apply(
            ClusterEvent(NODE_JOIN, at_iteration=1, spec=A800_SPEC, num_devices=8)
        )
        for node in (0, 1):
            for device in range(4):
                view.apply(
                    ClusterEvent(
                        DEVICE_FAILURE, at_iteration=2, node=node, device=device
                    )
                )
        new_snapshot = view.snapshot()
        new_plan = plan_on(new_snapshot, tasks)
        model = MigrationCostModel(checkpoint_latency=1.0)
        report = model.assess(old_plan, old_snapshot, new_plan, new_snapshot)
        assert report.groups  # parameters exist
        assert all(group.restored for group in report.groups)
        assert report.restored_bytes == report.total_bytes
        # Each restored group pays at least the fixed restore latency.
        assert report.restore_seconds >= len(report.groups) * 1.0
        assert report.num_restored_groups == len(report.groups)

    def test_restore_slower_than_resharding(self, tasks):
        """Losing every holder costs more than re-sharding over NVLink."""
        reshard_view = make_view()
        old_snapshot = reshard_view.snapshot()
        old_plan = plan_on(old_snapshot, tasks)
        reshard_view.apply(
            ClusterEvent(DEVICE_FAILURE, at_iteration=1, node=0, device=0)
        )
        reshard_snapshot = reshard_view.snapshot()
        reshard_report = MigrationCostModel().assess(
            old_plan, old_snapshot, plan_on(reshard_snapshot, tasks), reshard_snapshot
        )

        lost_view = make_view()
        lost_snapshot = lost_view.snapshot()
        lost_plan = plan_on(lost_snapshot, tasks)
        lost_view.apply(
            ClusterEvent(NODE_JOIN, at_iteration=1, spec=A800_SPEC, num_devices=8)
        )
        for node in (0, 1):
            for device in range(4):
                lost_view.apply(
                    ClusterEvent(
                        DEVICE_FAILURE, at_iteration=2, node=node, device=device
                    )
                )
        lost_after = lost_view.snapshot()
        lost_report = MigrationCostModel().assess(
            lost_plan, lost_snapshot, plan_on(lost_after, tasks), lost_after
        )
        assert lost_report.total_seconds > reshard_report.total_seconds

    def test_shared_parameter_keys_migrate_once(self, tasks):
        """The cross-task 'lm' stack (shared param keys) forms one group, not
        one per task, and its device set spans both tasks' placements."""
        view = make_view()
        snapshot = view.snapshot()
        plan = plan_on(snapshot, tasks)
        groups = MigrationCostModel()._parameter_groups(plan)
        shared = [label for label in groups if label.startswith("shared.lm")]
        assert len(shared) == 1
        _, devices = groups[shared[0]]
        lm_metaops = [
            m for m in plan.metagraph.metaops.values()
            if m.representative.param_key and "lm" in m.representative.param_key
        ]
        assert len(lm_metaops) == 2  # one lm MetaOp per task, merged above
        assert devices  # placed somewhere

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MigrationCostModel(checkpoint_read_bandwidth=0)
        with pytest.raises(ValueError):
            MigrationCostModel(checkpoint_latency=-1)

    def test_report_document_is_deterministic(self, tasks):
        def build():
            view = make_view()
            old_snapshot = view.snapshot()
            old_plan = plan_on(old_snapshot, tasks)
            view.apply(
                ClusterEvent(DEVICE_FAILURE, at_iteration=1, node=1, device=2)
            )
            new_snapshot = view.snapshot()
            return MigrationCostModel().assess(
                old_plan, old_snapshot, plan_on(new_snapshot, tasks), new_snapshot
            )

        assert build().to_document() == build().to_document()


def _total_loss_snapshots(tasks):
    """Old/new snapshots where every original state holder vanishes."""
    view = make_view()
    old_snapshot = view.snapshot()
    old_plan = plan_on(old_snapshot, tasks)
    view.apply(
        ClusterEvent(NODE_JOIN, at_iteration=1, spec=A800_SPEC, num_devices=8)
    )
    for node in (0, 1):
        for device in range(4):
            view.apply(
                ClusterEvent(
                    DEVICE_FAILURE, at_iteration=2, node=node, device=device
                )
            )
    new_snapshot = view.snapshot()
    new_plan = plan_on(new_snapshot, tasks)
    return old_plan, old_snapshot, new_plan, new_snapshot


class TestCheckpointInterval:
    def test_restore_charges_lost_iterations(self, tasks):
        old_plan, old_snapshot, new_plan, new_snapshot = _total_loss_snapshots(tasks)
        model = MigrationCostModel(checkpoint_interval=50)
        report = model.assess(
            old_plan,
            old_snapshot,
            new_plan,
            new_snapshot,
            at_iteration=130,
            iteration_seconds=0.25,
        )
        assert report.num_restored_groups > 0
        assert report.lost_iterations == 130 % 50 == 30
        assert report.recompute_seconds == pytest.approx(30 * 0.25)
        assert report.total_seconds == pytest.approx(
            report.transfer_seconds + report.restore_seconds + 30 * 0.25
        )
        document = report.to_document()
        assert document["lost_iterations"] == 30
        assert document["recompute_seconds"] == pytest.approx(7.5)

    def test_restore_at_checkpoint_boundary_loses_nothing(self, tasks):
        old_plan, old_snapshot, new_plan, new_snapshot = _total_loss_snapshots(tasks)
        model = MigrationCostModel(checkpoint_interval=50)
        report = model.assess(
            old_plan,
            old_snapshot,
            new_plan,
            new_snapshot,
            at_iteration=100,
            iteration_seconds=0.25,
        )
        assert report.lost_iterations == 0
        assert report.recompute_seconds == 0.0

    def test_disabled_by_default(self, tasks):
        old_plan, old_snapshot, new_plan, new_snapshot = _total_loss_snapshots(tasks)
        report = MigrationCostModel().assess(
            old_plan,
            old_snapshot,
            new_plan,
            new_snapshot,
            at_iteration=130,
            iteration_seconds=0.25,
        )
        assert report.num_restored_groups > 0
        assert report.lost_iterations == 0
        assert report.recompute_seconds == 0.0

    def test_pure_reshard_never_charges_recompute(self, tasks):
        """Lost progress is only charged when state actually restores from
        the checkpoint store — a transfer-only migration keeps its optimizer
        state and loses nothing."""
        view = make_view()
        old_snapshot = view.snapshot()
        old_plan = plan_on(old_snapshot, tasks)
        view.apply(ClusterEvent(DEVICE_FAILURE, at_iteration=1, node=0, device=0))
        new_snapshot = view.snapshot()
        new_plan = plan_on(new_snapshot, tasks)
        report = MigrationCostModel(checkpoint_interval=10).assess(
            old_plan,
            old_snapshot,
            new_plan,
            new_snapshot,
            at_iteration=7,
            iteration_seconds=1.0,
        )
        assert report.num_restored_groups == 0
        assert report.recompute_seconds == 0.0

    def test_invalid_parameters_rejected(self, tasks):
        with pytest.raises(ValueError):
            MigrationCostModel(checkpoint_interval=0)
        old_plan, old_snapshot, new_plan, new_snapshot = _total_loss_snapshots(tasks)
        model = MigrationCostModel(checkpoint_interval=10)
        with pytest.raises(ValueError):
            model.assess(
                old_plan,
                old_snapshot,
                new_plan,
                new_snapshot,
                at_iteration=-1,
                iteration_seconds=1.0,
            )
