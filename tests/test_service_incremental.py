"""Tests for incremental re-planning (scalability-curve reuse)."""

import pytest

from repro.cluster.topology import make_cluster
from repro.core.estimator import metaop_curve_key
from repro.core.planner import ExecutionPlanner
from repro.service.incremental import IncrementalPlanner


@pytest.fixture
def cluster():
    return make_cluster(4, devices_per_node=4)


class TestCurveReuse:
    def test_first_plan_estimates_everything(self, cluster, tiny_tasks):
        inc = IncrementalPlanner(ExecutionPlanner(cluster))
        plan = inc.plan(tiny_tasks)
        assert plan.report.reused_curves == 0
        assert inc.stats.curves_estimated == plan.report.num_metaops
        assert inc.num_pooled_curves > 0

    def test_identical_replan_reuses_all_curves(self, cluster, tiny_tasks):
        inc = IncrementalPlanner(ExecutionPlanner(cluster))
        first = inc.plan(tiny_tasks)
        second = inc.plan(tiny_tasks)
        assert second.report.reused_curves == second.report.num_metaops
        assert second.schedule.makespan == pytest.approx(first.schedule.makespan)
        assert inc.stats.reuse_rate == pytest.approx(0.5)
        assert inc.stats.estimation_seconds_saved > 0

    def test_overlapping_task_set_reuses_shared_curves(self, cluster, tiny_tasks):
        inc = IncrementalPlanner(ExecutionPlanner(cluster))
        inc.plan(tiny_tasks[:1])
        grown = inc.plan(tiny_tasks)
        assert 0 < grown.report.reused_curves < grown.report.num_metaops

    def test_reused_plan_matches_fresh_plan(self, cluster, tiny_tasks):
        fresh = ExecutionPlanner(cluster).plan(tiny_tasks)
        inc = IncrementalPlanner(ExecutionPlanner(cluster))
        inc.plan(tiny_tasks[:1])
        reused = inc.plan(tiny_tasks)
        # Profiles are deterministic, so reused curves change nothing.
        assert reused.schedule.makespan == pytest.approx(fresh.schedule.makespan)
        assert reused.theoretical_optimum == pytest.approx(fresh.theoretical_optimum)
        assert reused.fingerprint == fresh.fingerprint

    def test_clear_drops_pool(self, cluster, tiny_tasks):
        inc = IncrementalPlanner(ExecutionPlanner(cluster))
        inc.plan(tiny_tasks)
        inc.clear()
        assert inc.num_pooled_curves == 0
        assert inc.plan(tiny_tasks).report.reused_curves == 0

    def test_pool_capacity_bounded(self, cluster, tiny_tasks):
        inc = IncrementalPlanner(ExecutionPlanner(cluster), max_curves=2)
        inc.plan(tiny_tasks)
        assert inc.num_pooled_curves == 2
        with pytest.raises(ValueError):
            IncrementalPlanner(ExecutionPlanner(cluster), max_curves=0)


class TestCurveKeys:
    def test_identical_workloads_share_keys(self, cluster, chain_task_factory):
        # Two structurally identical tasks under different names: every MetaOp
        # of one has a key-equal twin in the other, so a single profile per
        # workload signature serves both.
        twin_a = chain_task_factory("twin_a", {"audio": 3, "lm": 2}, batch=8)
        twin_b = chain_task_factory("twin_b", {"audio": 3, "lm": 2}, batch=8)
        plan = ExecutionPlanner(cluster).plan([twin_a, twin_b])
        keys = [
            metaop_curve_key(plan.metagraph.metaop(index)) for index in plan.curves
        ]
        assert len(set(keys)) == len(keys) / 2

    def test_twin_tasks_need_half_the_estimates(self, cluster, chain_task_factory):
        inc = IncrementalPlanner(ExecutionPlanner(cluster))
        inc.plan([chain_task_factory("twin_a", {"audio": 3, "lm": 2}, batch=8)])
        plan = inc.plan([chain_task_factory("twin_b", {"audio": 3, "lm": 2}, batch=8)])
        assert plan.report.reused_curves == plan.report.num_metaops
