"""Tests for the temporally-decoupled baselines (Megatron-LM / DeepSpeed /
Spindle-Seq)."""

import pytest

from repro.baselines.sequential import (
    DeepSpeedSystem,
    MegatronLMSystem,
    SpindleSeqSystem,
    TemporallyDecoupledSystem,
)


class TestTemporallyDecoupledExecution:
    def test_iteration_time_components(self, two_island_cluster, tiny_tasks):
        system = DeepSpeedSystem(two_island_cluster)
        result = system.run_iteration(tiny_tasks)
        assert result.iteration_time == pytest.approx(result.breakdown.total)
        assert result.breakdown.forward_backward > 0
        assert result.breakdown.send_recv == 0.0
        assert result.num_waves == len(tiny_tasks)

    def test_rejects_empty_task_list(self, two_island_cluster):
        with pytest.raises(ValueError):
            DeepSpeedSystem(two_island_cluster).run_iteration([])

    def test_compute_time_is_sum_over_tasks(self, two_island_cluster, tiny_tasks):
        system = DeepSpeedSystem(two_island_cluster)
        combined = system.run_iteration(tiny_tasks)
        individual = [system.run_iteration([task]) for task in tiny_tasks]
        assert combined.breakdown.forward_backward == pytest.approx(
            sum(r.breakdown.forward_backward for r in individual), rel=1e-6
        )

    def test_all_devices_busy_during_every_operator(self, two_island_cluster, tiny_tasks):
        system = DeepSpeedSystem(two_island_cluster)
        result = system.run_iteration(tiny_tasks)
        devices_seen = {seg.device_id for seg in result.trace.segments}
        assert devices_seen == set(range(two_island_cluster.num_devices))

    def test_utilization_fluctuates_across_operators(self, two_island_cluster, tiny_tasks):
        """The Fig. 1 phenomenon: decoupled execution has uneven utilization."""
        system = DeepSpeedSystem(two_island_cluster)
        result = system.run_iteration(tiny_tasks)
        rates = {round(seg.flops_per_second, 3) for seg in result.trace.segments}
        assert len(rates) > 1

    def test_memory_reported_for_every_device(self, two_island_cluster, tiny_tasks):
        result = DeepSpeedSystem(two_island_cluster).run_iteration(tiny_tasks)
        assert set(result.device_memory_bytes) == set(
            range(two_island_cluster.num_devices)
        )
        assert all(v > 0 for v in result.device_memory_bytes.values())


class TestSystemVariants:
    def test_capability_flags(self):
        assert not DeepSpeedSystem.capabilities.inter_task_aware
        assert not DeepSpeedSystem.capabilities.intra_task_aware
        assert not MegatronLMSystem.capabilities.intra_task_aware

    def test_megatron_and_deepspeed_are_close(self, two_island_cluster, tiny_tasks):
        ds = DeepSpeedSystem(two_island_cluster).run_iteration(tiny_tasks)
        mg = MegatronLMSystem(two_island_cluster).run_iteration(tiny_tasks)
        assert ds.iteration_time == pytest.approx(mg.iteration_time, rel=0.1)

    def test_spindle_seq_matches_deepspeed_closely(self, two_island_cluster, tiny_tasks):
        """Appendix H: the Spindle implementation without planning optimisations
        performs on par with the SOTA systems."""
        ds = DeepSpeedSystem(two_island_cluster).run_iteration(tiny_tasks)
        seq = SpindleSeqSystem(two_island_cluster).run_iteration(tiny_tasks)
        assert seq.iteration_time == pytest.approx(ds.iteration_time, rel=0.1)
        assert seq.iteration_time >= ds.iteration_time

    def test_names_are_distinct(self):
        names = {
            TemporallyDecoupledSystem.name,
            MegatronLMSystem.name,
            DeepSpeedSystem.name,
            SpindleSeqSystem.name,
        }
        assert len(names) == 4
