"""Tests for the SpindleSystem wrapper and the system registry."""

import pytest

from repro.baselines import SYSTEM_CLASSES, make_system
from repro.baselines.spindle_system import SpindleSystem
from repro.baselines.sequential import DeepSpeedSystem


class TestSpindleSystem:
    def test_run_iteration_produces_plan_and_result(self, two_island_cluster, tiny_tasks):
        system = SpindleSystem(two_island_cluster)
        result = system.run_iteration(tiny_tasks)
        assert result.iteration_time > 0
        assert system.last_plan is not None
        assert system.last_engine is not None
        assert system.last_planning_seconds > 0
        assert result.metadata["system"] == "spindle"
        assert result.metadata["num_metaops"] == system.last_plan.metagraph.num_metaops

    def test_plan_only_entry_point(self, two_island_cluster, tiny_tasks):
        system = SpindleSystem(two_island_cluster)
        plan = system.plan(tiny_tasks)
        plan.validate()
        assert plan.cluster is two_island_cluster

    def test_sequential_placement_variant(self, two_island_cluster, tiny_tasks):
        locality = SpindleSystem(two_island_cluster).run_iteration(tiny_tasks)
        sequential = SpindleSystem(
            two_island_cluster, placement_strategy="sequential"
        ).run_iteration(tiny_tasks)
        # The locality-aware placement never increases send/recv time.
        assert locality.breakdown.send_recv <= sequential.breakdown.send_recv + 1e-9

    def test_outperforms_deepspeed_on_multi_task_workload(self, cluster16):
        from repro.models.multitask_clip import multitask_clip_tasks

        tasks = multitask_clip_tasks(4)
        spindle = SpindleSystem(cluster16).run_iteration(tasks)
        deepspeed = DeepSpeedSystem(cluster16).run_iteration(tasks)
        assert spindle.iteration_time < deepspeed.iteration_time

    def test_capability_flags(self):
        assert SpindleSystem.capabilities.inter_task_aware
        assert SpindleSystem.capabilities.intra_task_aware


class TestSystemRegistry:
    def test_all_paper_systems_registered(self):
        assert set(SYSTEM_CLASSES) == {
            "spindle",
            "spindle-optimus",
            "distmm-mt",
            "megatron-lm",
            "deepspeed",
            "spindle-seq",
        }

    def test_make_system(self, two_island_cluster):
        system = make_system("deepspeed", two_island_cluster)
        assert isinstance(system, DeepSpeedSystem)
        assert make_system("SPINDLE", two_island_cluster).name == "spindle"

    def test_make_system_unknown(self, two_island_cluster):
        with pytest.raises(KeyError):
            make_system("alpa", two_island_cluster)

    def test_tab1a_capability_matrix(self):
        """Tab. 1a: heterogeneity awareness of the competitors."""
        expectations = {
            "megatron-lm": (False, False),
            "deepspeed": (False, False),
            "distmm-mt": (False, True),
            "spindle-optimus": (True, False),
            "spindle": (True, True),
        }
        for name, (inter, intra) in expectations.items():
            capabilities = SYSTEM_CLASSES[name].capabilities
            assert capabilities.inter_task_aware is inter
            assert capabilities.intra_task_aware is intra
