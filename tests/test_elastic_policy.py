"""Replan policies and the first-order slowdown estimate."""

import pytest

from repro.cluster.device import A800_SPEC, DeviceSpec
from repro.cluster.topology import make_cluster, make_heterogeneous_cluster
from repro.elastic.events import STRAGGLER_ONSET, ClusterEvent
from repro.elastic.policy import (
    DebouncedReplanPolicy,
    ImmediateReplanPolicy,
    ReplanContext,
    SlowdownThresholdPolicy,
    forgone_capacity_gain,
    make_policy,
)

FAST = A800_SPEC
SLOW = DeviceSpec(
    name="slow", peak_flops=A800_SPEC.peak_flops, memory_bytes=A800_SPEC.memory_bytes,
    achievable_fraction=A800_SPEC.achievable_fraction / 2,
)


def context(old, new, pending_groups=1, iterations=10, stay_slowdown=1.0):
    events = (
        ClusterEvent(STRAGGLER_ONSET, at_iteration=1, node=0, severity=0.5),
    )
    return ReplanContext(
        events=events,
        old_topology=old,
        new_topology=new,
        pending_groups=pending_groups,
        iterations_since_replan=iterations,
        stay_slowdown=stay_slowdown,
    )


class TestEstimatedSlowdown:
    def test_unchanged_topology_estimates_one(self):
        cluster = make_cluster(8)
        assert context(cluster, cluster).estimated_slowdown == 1.0

    def test_straggler_degradation_dominates(self):
        # The runner derives the degradation over the plan's own nodes and
        # passes it in; the context surfaces it as the estimate.
        old = make_cluster(16)
        new = make_heterogeneous_cluster([FAST, SLOW], devices_per_node=8)
        assert context(old, new, stay_slowdown=2.0).estimated_slowdown == (
            pytest.approx(2.0)
        )

    def test_expansion_counts_forgone_capacity(self):
        old = make_cluster(8)
        new = make_cluster(16)
        assert forgone_capacity_gain(old, new) == pytest.approx(2.0)
        assert context(old, new).estimated_slowdown == pytest.approx(2.0)

    def test_slow_node_joining_is_not_degradation(self):
        """A slow node merely joining must not read as a slowdown of staying:
        the old plan never touches it, and its capacity contribution is tiny."""
        old = make_cluster(16)
        joined = make_heterogeneous_cluster(
            [FAST, FAST, SLOW], devices_per_node=8
        )
        estimate = context(old, joined).estimated_slowdown
        assert estimate == pytest.approx(forgone_capacity_gain(old, joined))
        assert estimate < 1.3  # far from the 2x the old global-min bug gave

    def test_shrink_never_estimates_below_one(self):
        # Capacity loss forces a replan anyway; the estimate stays clamped.
        assert forgone_capacity_gain(make_cluster(16), make_cluster(8)) == 1.0
        assert context(make_cluster(16), make_cluster(8)).estimated_slowdown == 1.0


class TestPolicies:
    def test_immediate_always_replans(self):
        ctx = context(make_cluster(8), make_cluster(8))
        assert ImmediateReplanPolicy().should_replan(ctx)

    def test_debounced_waits_for_enough_groups(self):
        policy = DebouncedReplanPolicy(min_groups=3)
        old = new = make_cluster(8)
        assert not policy.should_replan(context(old, new, pending_groups=2))
        assert policy.should_replan(context(old, new, pending_groups=3))
        with pytest.raises(ValueError):
            DebouncedReplanPolicy(min_groups=0)

    def test_threshold_compares_estimated_slowdown(self):
        policy = SlowdownThresholdPolicy(threshold=0.5)
        old = new = make_cluster(16)
        assert policy.should_replan(context(old, new, stay_slowdown=2.0))
        assert not policy.should_replan(context(old, new, stay_slowdown=1.11))
        with pytest.raises(ValueError):
            SlowdownThresholdPolicy(threshold=-0.1)

    def test_factory_round_trips(self):
        assert make_policy("immediate").name == "immediate"
        assert make_policy("debounced", min_groups=5).describe() == (
            "debounced(min_groups=5)"
        )
        assert make_policy("threshold", threshold=0.25).describe() == (
            "threshold(0.25)"
        )
        with pytest.raises(ValueError):
            make_policy("psychic")
