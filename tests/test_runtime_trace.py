"""Unit tests for utilization traces."""

import pytest

from repro.runtime.trace import TraceSegment, UtilizationTrace


class TestTraceSegment:
    def test_duration_and_flops(self):
        seg = TraceSegment(device_id=0, start=1.0, end=3.0, flops_per_second=5.0)
        assert seg.duration == 2.0
        assert seg.flops == 10.0

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            TraceSegment(device_id=0, start=2.0, end=1.0, flops_per_second=1.0)
        with pytest.raises(ValueError):
            TraceSegment(device_id=0, start=0.0, end=1.0, flops_per_second=-1.0)


class TestUtilizationTrace:
    @pytest.fixture
    def trace(self):
        trace = UtilizationTrace(num_devices=2, peak_flops_per_device=100.0)
        trace.add_busy(0, start=0.0, duration=1.0, flops_per_second=50.0, metaop_index=0)
        trace.add_busy(0, start=1.0, duration=1.0, flops_per_second=100.0, metaop_index=1)
        trace.add_busy(1, start=0.0, duration=2.0, flops_per_second=25.0, metaop_index=0)
        return trace

    def test_end_time_tracks_latest_segment(self, trace):
        assert trace.end_time == 2.0

    def test_device_id_validated(self, trace):
        with pytest.raises(ValueError):
            trace.add_busy(5, start=0.0, duration=1.0, flops_per_second=1.0)

    def test_device_busy_time(self, trace):
        busy = trace.device_busy_time()
        assert busy[0] == pytest.approx(2.0)
        assert busy[1] == pytest.approx(2.0)

    def test_device_average_flops(self, trace):
        avg = trace.device_average_flops()
        assert avg[0] == pytest.approx((50 + 100) / 2.0)
        assert avg[1] == pytest.approx(25.0)

    def test_device_utilization_fraction_of_peak(self, trace):
        util = trace.device_utilization()
        assert util[0] == pytest.approx(0.75)
        assert util[1] == pytest.approx(0.25)

    def test_cluster_average_flops(self, trace):
        assert trace.cluster_average_flops() == pytest.approx((150 + 50) / 2.0)

    def test_cluster_timeline_integrates_to_total_flops(self, trace):
        points = trace.cluster_timeline(num_points=50)
        assert len(points) == 50
        step = trace.end_time / 50
        integral = sum(value * step for _, value in points)
        total = sum(seg.flops for seg in trace.segments)
        assert integral == pytest.approx(total, rel=1e-6)

    def test_cluster_timeline_shows_idle_periods(self):
        trace = UtilizationTrace(num_devices=1, peak_flops_per_device=10.0)
        trace.add_busy(0, start=0.0, duration=1.0, flops_per_second=10.0)
        trace.add_busy(0, start=3.0, duration=1.0, flops_per_second=10.0)
        points = trace.cluster_timeline(num_points=4)
        values = [value for _, value in points]
        assert values[0] > 0
        assert values[1] == pytest.approx(0.0)
        assert values[2] == pytest.approx(0.0)

    def test_metaop_utilization(self, trace):
        metaop_flops = trace.metaop_average_flops()
        assert metaop_flops[0] == pytest.approx((50 * 1 + 25 * 2) / 3.0)
        assert metaop_flops[1] == pytest.approx(100.0)
        util = trace.metaop_utilization()
        assert util[1] == pytest.approx(1.0)

    def test_empty_trace(self):
        trace = UtilizationTrace(num_devices=2, peak_flops_per_device=10.0)
        assert trace.cluster_average_flops() == 0.0
        assert trace.device_utilization() == {0: 0.0, 1: 0.0}
        assert trace.cluster_timeline() == [(0.0, 0.0)]
        assert trace.metaop_utilization() == {}

    def test_invalid_timeline_resolution(self, trace):
        with pytest.raises(ValueError):
            trace.cluster_timeline(num_points=0)
