"""Tests for the hardened plan service: retries, breaker, ladder, shedding."""

import pytest

from repro.cluster.topology import make_cluster
from repro.core.planner import ExecutionPlanner
from repro.faults import (
    PLANNER_ERROR,
    SLOW_SOLVE,
    WORKER_CRASH,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.service import (
    RESPONSE_DEGRADED,
    RESPONSE_ERROR,
    RESPONSE_SERVED,
    RESPONSE_SHED,
    TIER_CACHE,
    TIER_FRESH,
    TIER_REFERENCE,
    TIER_STALE,
    CircuitBreaker,
    IncrementalPlanner,
    PlanCache,
    PlanResponse,
    PlanService,
    PlanServicePool,
    ResiliencePolicy,
    ServiceOverloadError,
)
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)


@pytest.fixture
def cluster():
    return make_cluster(4, devices_per_node=4)


def injector_for(*events, sleeper=lambda _: None):
    """An injector over an explicit event list (no real stalls by default)."""
    return FaultInjector(FaultPlan(events), sleeper=sleeper)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_queue_depth=0)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = ResiliencePolicy(
            backoff_base_seconds=0.01,
            backoff_multiplier=2.0,
            backoff_max_seconds=0.03,
            backoff_jitter=0.25,
            seed=5,
        )
        for attempt in range(1, 6):
            a = policy.backoff_seconds(3, attempt)
            b = policy.backoff_seconds(3, attempt)
            assert a == b  # seeded jitter: identical replay
            assert 0 < a <= 0.03 * 1.25
        # Different request / attempt / seed draw different jitter.
        assert policy.backoff_seconds(3, 1) != policy.backoff_seconds(4, 1)
        other = ResiliencePolicy(
            backoff_base_seconds=0.01, backoff_jitter=0.25, seed=6
        )
        assert policy.backoff_seconds(3, 1) != other.backoff_seconds(3, 1)

    def test_backoff_without_jitter_is_exponential(self):
        policy = ResiliencePolicy(
            backoff_base_seconds=0.01,
            backoff_multiplier=2.0,
            backoff_max_seconds=1.0,
            backoff_jitter=0.0,
        )
        assert policy.backoff_seconds(0, 1) == pytest.approx(0.01)
        assert policy.backoff_seconds(0, 2) == pytest.approx(0.02)
        assert policy.backoff_seconds(0, 3) == pytest.approx(0.04)
        assert policy.backoff_seconds(0, 0) == 0.0


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_and_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=1.0, clock=lambda: clock[0]
        )
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.trips == 1
        clock[0] = 1.5  # past the reset window: half-open probe allowed
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(failure_threshold=0, reset_seconds=1.0)
        for _ in range(10):
            breaker.record_failure()
        assert breaker.allow()
        assert breaker.trips == 0


class TestPlanResponse:
    def test_outcome_properties(self):
        served = PlanResponse(outcome=RESPONSE_SERVED, tier=TIER_FRESH, fingerprint="f")
        degraded = PlanResponse(
            outcome=RESPONSE_DEGRADED, tier=TIER_STALE, fingerprint="f"
        )
        shed = PlanResponse(outcome=RESPONSE_SHED, tier=None, fingerprint="f")
        assert served.ok and not served.degraded
        assert degraded.ok and degraded.degraded
        assert not shed.ok

    def test_canonical_dict_has_no_objects(self):
        response = PlanResponse(
            outcome=RESPONSE_ERROR, tier=None, fingerprint="f", attempts=3, error="x"
        )
        document = response.canonical_dict()
        assert document == {
            "outcome": RESPONSE_ERROR,
            "tier": None,
            "fingerprint": "f",
            "plan_fingerprint": None,
            "attempts": 3,
            "error": "x",
            "trace_id": None,
            "tenant": None,
        }


class TestRetries:
    def test_injected_error_recovers_on_retry(self, cluster, tiny_tasks):
        injector = injector_for(
            FaultEvent(index=0, kind=PLANNER_ERROR, attempts=1)
        )
        policy = ResiliencePolicy(
            max_attempts=2, backoff_base_seconds=0.0, backoff_jitter=0.0
        )
        with PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        ) as service:
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == RESPONSE_SERVED
        assert response.tier == TIER_FRESH
        assert response.attempts == 2
        assert response.plan is not None
        assert injector.counts()[PLANNER_ERROR] == 1

    def test_worker_crash_respawns_and_recovers(self, cluster, tiny_tasks):
        injector = injector_for(
            FaultEvent(index=0, kind=WORKER_CRASH, attempts=1)
        )
        policy = ResiliencePolicy(
            max_attempts=2, backoff_base_seconds=0.0, backoff_jitter=0.0
        )
        with PlanService(
            lambda: ExecutionPlanner(cluster),
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        ) as service:
            response = service.request(tiny_tasks, timeout=30.0)
            assert response.outcome == RESPONSE_SERVED
            assert injector.counts()[WORKER_CRASH] == 1
            # The replacement worker keeps serving new requests.
            second = service.request(list(reversed(tiny_tasks)), timeout=30.0)
            assert second.outcome == RESPONSE_SERVED
            assert second.tier == TIER_CACHE
        assert service.pending_requests() == 0

    def test_slow_solve_injected_without_failing(self, cluster, tiny_tasks):
        stalls = []
        injector = injector_for(
            FaultEvent(index=0, kind=SLOW_SOLVE, delay_seconds=0.2),
            sleeper=stalls.append,
        )
        with PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            resilience=ResiliencePolicy(max_attempts=1),
            fault_injector=injector,
        ) as service:
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == RESPONSE_SERVED
        assert stalls == [pytest.approx(0.2)]


class TestDegradationLadder:
    def _always_failing_injector(self):
        return injector_for(
            FaultEvent(index=0, kind=PLANNER_ERROR, attempts=99)
        )

    def test_reference_tier_serves_when_retries_exhaust(self, cluster, tiny_tasks):
        policy = ResiliencePolicy(
            max_attempts=2,
            backoff_base_seconds=0.0,
            backoff_jitter=0.0,
            allow_stale=False,
            allow_incremental=False,
        )
        with PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            resilience=policy,
            fault_injector=self._always_failing_injector(),
        ) as service:
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == RESPONSE_DEGRADED
        assert response.tier == TIER_REFERENCE
        assert response.attempts == 2
        # The reference-path plan is content-identical to the optimized one.
        direct = ExecutionPlanner(cluster).plan(tiny_tasks)
        assert response.plan.fingerprint == direct.fingerprint

    def test_stale_tier_serves_expired_entries(self, cluster, tiny_tasks):
        clock = [0.0]
        cache = PlanCache(capacity=8, ttl_seconds=10.0, clock=lambda: clock[0])
        policy = ResiliencePolicy(
            max_attempts=1,
            allow_incremental=False,
            allow_reference=False,
        )
        injector = injector_for(
            FaultEvent(index=1, kind=PLANNER_ERROR, attempts=99)
        )
        with PlanService(
            ExecutionPlanner(cluster),
            cache=cache,
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        ) as service:
            fresh = service.request(tiny_tasks, timeout=30.0)
            assert fresh.tier == TIER_FRESH
            clock[0] = 60.0  # expire the entry; solving now always fails
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == RESPONSE_DEGRADED
        assert response.tier == TIER_STALE
        assert response.plan is fresh.plan
        assert cache.stats.stale_hits == 1

    def test_incremental_tier_reuses_the_retained_plan(self, cluster, tiny_tasks):
        policy = ResiliencePolicy(
            max_attempts=1, allow_stale=False, allow_reference=False
        )
        injector = injector_for(
            FaultEvent(index=1, kind=PLANNER_ERROR, attempts=99)
        )
        incremental = IncrementalPlanner(
            ExecutionPlanner(cluster), reuse_levels=True
        )
        with PlanService(
            incremental,
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        ) as service:
            first = service.request(tiny_tasks, timeout=30.0)
            assert first.tier == TIER_FRESH
            service.cache.clear()  # force re-planning of the same workload
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == RESPONSE_DEGRADED
        assert response.tier == "incremental"
        assert response.plan.fingerprint == first.plan.fingerprint

    def test_exhausted_ladder_is_an_error(self, cluster, tiny_tasks):
        policy = ResiliencePolicy(
            max_attempts=1,
            allow_stale=False,
            allow_incremental=False,
            allow_reference=False,
        )
        with PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            resilience=policy,
            fault_injector=self._always_failing_injector(),
        ) as service:
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == RESPONSE_ERROR
        assert response.plan is None
        assert "ladder" in (response.error or "")
        assert service.stats.errors == 1


class TestBreakerInService:
    def test_breaker_opens_and_short_circuits(self, cluster, chain_task_factory):
        clock = [0.0]
        policy = ResiliencePolicy(
            max_attempts=1,
            breaker_failure_threshold=2,
            breaker_reset_seconds=1.0,
            allow_stale=False,
            allow_incremental=False,
            allow_reference=False,
        )
        injector = injector_for(
            FaultEvent(index=0, kind=PLANNER_ERROR, attempts=99),
            FaultEvent(index=1, kind=PLANNER_ERROR, attempts=99),
        )
        service = PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        )
        service.breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=1.0, clock=lambda: clock[0]
        )
        workloads = [
            [chain_task_factory(f"breaker-{i}", {"lm": 2})] for i in range(4)
        ]
        try:
            assert service.request(workloads[0], timeout=30.0).outcome == RESPONSE_ERROR
            assert service.request(workloads[1], timeout=30.0).outcome == RESPONSE_ERROR
            assert service.breaker.state == BREAKER_OPEN
            # Open breaker: the solve is never attempted (no fault consumed).
            blocked = service.request(workloads[2], timeout=30.0)
            assert blocked.outcome == RESPONSE_ERROR
            assert "breaker" in (blocked.error or "")
            assert injector.counts()[PLANNER_ERROR] == 2
            # Past the reset window a half-open probe succeeds and closes it.
            clock[0] = 2.0
            probe = service.request(workloads[3], timeout=30.0)
            assert probe.outcome == RESPONSE_SERVED
            assert service.breaker.state == BREAKER_CLOSED
        finally:
            service.close()


class TestAdmissionControl:
    def test_overload_sheds_instead_of_queueing(
        self, cluster, tiny_tasks, chain_task_factory
    ):
        import threading

        gate = threading.Event()
        release = threading.Event()

        class Blocking(ExecutionPlanner):
            def plan(self, workload, **kwargs):
                gate.set()
                assert release.wait(timeout=10.0)
                return super().plan(workload, **kwargs)

        policy = ResiliencePolicy(max_queue_depth=1)
        service = PlanService(
            Blocking(cluster), num_workers=1, resilience=policy
        )
        try:
            first = service.submit(tiny_tasks)
            assert gate.wait(timeout=10.0)
            shed = service.request([chain_task_factory("shed-me", {"lm": 2})])
            assert shed.outcome == RESPONSE_SHED
            assert service.stats.count("shed") == 1
            with pytest.raises(ServiceOverloadError):
                service.plan([chain_task_factory("shed-too", {"lm": 2})])
            release.set()
            assert first.result(timeout=30.0) is not None
        finally:
            release.set()
            service.close()


class TestDeadlines:
    def test_deadline_exceeded_degrades(self, cluster, tiny_tasks):
        import time as _time

        policy = ResiliencePolicy(
            max_attempts=3,
            deadline_seconds=0.01,
            backoff_base_seconds=0.0,
            backoff_jitter=0.0,
            allow_stale=False,
            allow_incremental=False,
        )
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultEvent(index=0, kind=SLOW_SOLVE, delay_seconds=0.05),
                    FaultEvent(index=0, kind=PLANNER_ERROR, attempts=1),
                ]
            ),
            sleeper=_time.sleep,  # a real stall, so the deadline really passes
        )
        with PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        ) as service:
            response = service.request(tiny_tasks, timeout=30.0)
        # Attempt 0 stalls past the deadline and fails; the deadline check
        # then routes the request to the ladder instead of retrying.
        assert response.outcome == RESPONSE_DEGRADED
        assert response.tier == TIER_REFERENCE
        assert response.attempts == 1


class TestPoolResilience:
    def test_policy_and_injector_reach_every_service(self, tiny_tasks):
        policy = ResiliencePolicy(max_attempts=2)
        injector = injector_for()
        pool = PlanServicePool(
            lambda topology: ExecutionPlanner(topology),
            num_workers=1,
            resilience=policy,
            fault_injector=injector,
        )
        try:
            small = pool.service_for(make_cluster(2, devices_per_node=4))
            large = pool.service_for(make_cluster(4, devices_per_node=4))
            assert small.resilience is policy
            assert large.resilience is policy
            assert small.injector is injector
            # Per-topology services get per-topology breakers.
            assert small.breaker is not large.breaker
        finally:
            pool.close()
