"""Tests for the crash-safe persistent plan store (repro.service.store)."""

import json

import pytest

from repro.cluster.topology import make_cluster
from repro.core.planner import ExecutionPlanner
from repro.faults import FaultEvent, FaultInjector, FaultPlan, InjectedPersistError
from repro.faults.plan import PERSIST_ERROR
from repro.service import (
    STORE_FORMAT_VERSION,
    PlanCache,
    PlanServicePool,
    PlanStore,
    StoreError,
    payload_checksum,
)


@pytest.fixture
def populated_cache(tiny_tasks):
    """A cache holding one planned entry (with rendered payload)."""
    planner = ExecutionPlanner(make_cluster(4, devices_per_node=4))
    plan = planner.plan(tiny_tasks)
    cache = PlanCache(capacity=8)
    cache.put(plan.fingerprint, plan)
    assert cache.get_payload(plan.fingerprint) is not None
    return cache, plan.fingerprint


class TestRoundTrip:
    def test_save_then_warm_start(self, tmp_path, populated_cache):
        cache, fingerprint = populated_cache
        store = PlanStore(tmp_path / "plans.json")
        store.save(cache)

        restored = PlanCache(capacity=8)
        result = PlanStore(tmp_path / "plans.json").load_into(restored)
        assert result.loaded == 1
        assert result.quarantined == {}
        # Payload-only entries serve payload lookups but miss on get().
        assert restored.get_payload(fingerprint) == cache.get_payload(fingerprint)
        assert restored.get(fingerprint) is None

    def test_missing_snapshot_loads_nothing(self, tmp_path):
        result = PlanStore(tmp_path / "absent.json").load_into(PlanCache())
        assert result.loaded == 0 and result.total == 0

    def test_snapshot_format_is_versioned_and_checksummed(
        self, tmp_path, populated_cache
    ):
        cache, fingerprint = populated_cache
        path = PlanStore(tmp_path / "plans.json").save(cache)
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        assert snapshot["format_version"] == STORE_FORMAT_VERSION
        assert snapshot["entry_count"] == 1
        record = snapshot["entries"][fingerprint]
        assert record["checksum"] == payload_checksum(record["payload"])


class TestAtomicity:
    def _failing_store(self, path, *, fail_saves):
        events = [FaultEvent(index=i, kind=PERSIST_ERROR) for i in fail_saves]
        return PlanStore(path, injector=FaultInjector(FaultPlan(events)))

    def test_injected_failure_leaves_no_snapshot(self, tmp_path, populated_cache):
        cache, _ = populated_cache
        store = self._failing_store(tmp_path / "plans.json", fail_saves=[0])
        with pytest.raises(InjectedPersistError):
            store.save(cache)
        assert not (tmp_path / "plans.json").exists()
        assert PlanStore(tmp_path / "plans.json").load_into(PlanCache()).loaded == 0

    def test_injected_failure_preserves_previous_snapshot(
        self, tmp_path, populated_cache
    ):
        cache, fingerprint = populated_cache
        store = self._failing_store(tmp_path / "plans.json", fail_saves=[1])
        store.save(cache)  # save 0 succeeds
        before = (tmp_path / "plans.json").read_text(encoding="utf-8")
        cache.invalidate(fingerprint)
        with pytest.raises(InjectedPersistError):
            store.save(cache)  # save 1 dies mid-write (torn temp file)
        assert (tmp_path / "plans.json").read_text(encoding="utf-8") == before
        restored = PlanCache()
        assert PlanStore(tmp_path / "plans.json").load_into(restored).loaded == 1
        assert restored.get_payload(fingerprint) is not None


class TestQuarantine:
    def test_corrupt_entry_quarantined_intact_entries_load(
        self, tmp_path, populated_cache
    ):
        cache, fingerprint = populated_cache
        path = PlanStore(tmp_path / "plans.json").save(cache)
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        good = snapshot["entries"][fingerprint]
        snapshot["entries"]["bad-fp"] = {
            "payload": good["payload"] + " ",
            "checksum": good["checksum"],
        }
        snapshot["entry_count"] = 2
        path.write_text(json.dumps(snapshot), encoding="utf-8")

        restored = PlanCache()
        store = PlanStore(path)
        result = store.load_into(restored)
        assert result.loaded == 1
        assert result.quarantined == {"bad-fp": "checksum mismatch"}
        assert store.quarantined == result.quarantined
        assert restored.get_payload(fingerprint) is not None
        assert restored.get_payload("bad-fp") is None

    def test_entry_count_mismatch_is_flagged(self, tmp_path, populated_cache):
        cache, _ = populated_cache
        path = PlanStore(tmp_path / "plans.json").save(cache)
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        snapshot["entry_count"] = 5  # truncation: fewer entries than declared
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        result = PlanStore(path).load_into(PlanCache())
        assert result.loaded == 1
        assert "<snapshot>" in result.quarantined

    def test_non_object_entry_quarantined(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": STORE_FORMAT_VERSION,
                    "entry_count": 1,
                    "entries": {"fp": "not-an-object"},
                }
            ),
            encoding="utf-8",
        )
        result = PlanStore(path).load_into(PlanCache())
        assert result.quarantined == {"fp": "entry is not an object"}


class TestStructuralErrors:
    def test_unparseable_snapshot_raises(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text('{"torn": ', encoding="utf-8")
        with pytest.raises(StoreError):
            PlanStore(path).load_into(PlanCache())

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"format_version": 99, "entries": {}}))
        with pytest.raises(StoreError):
            PlanStore(path).load_into(PlanCache())

    def test_missing_entries_mapping_raises(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"format_version": STORE_FORMAT_VERSION}))
        with pytest.raises(StoreError):
            PlanStore(path).load_into(PlanCache())


class TestLegacyV1:
    def test_cache_save_snapshot_loads_unverified(self, tmp_path, populated_cache):
        cache, fingerprint = populated_cache
        path = cache.save(tmp_path / "v1.json")  # legacy PlanCache snapshot
        restored = PlanCache()
        result = PlanStore(path).load_into(restored)
        assert result.loaded == 1
        assert restored.get_payload(fingerprint) is not None


class TestPoolIntegration:
    def test_pool_warm_starts_and_persists(self, tmp_path, tiny_tasks):
        path = tmp_path / "pool.json"
        cluster = make_cluster(4, devices_per_node=4)
        with PlanServicePool(
            lambda topology: ExecutionPlanner(topology),
            store=PlanStore(path),
        ) as pool:
            response = pool.service_for(cluster).request(tiny_tasks, timeout=30.0)
            assert response.ok
            assert pool.warm_started == 0
        assert path.is_file()  # close() persisted the shared cache

        reborn = PlanServicePool(
            lambda topology: ExecutionPlanner(topology), store=PlanStore(path)
        )
        try:
            assert reborn.warm_started == 1
            assert reborn.cache.get_payload(response.fingerprint) is not None
        finally:
            reborn.close()

    def test_pool_persist_absorbs_injected_failures(self, tmp_path, tiny_tasks):
        injector = FaultInjector(
            FaultPlan([FaultEvent(index=0, kind=PERSIST_ERROR)])
        )
        pool = PlanServicePool(
            lambda topology: ExecutionPlanner(topology),
            store=PlanStore(tmp_path / "pool.json", injector=injector),
        )
        try:
            assert pool.persist() is False  # injected I/O error, absorbed
            assert pool.persist() is True
        finally:
            pool.close()

    def test_pool_without_store_reports_no_persist(self):
        pool = PlanServicePool(lambda topology: ExecutionPlanner(topology))
        try:
            assert pool.persist() is False
        finally:
            pool.close()


class TestCompaction:
    def _corrupt_snapshot(self, path, extra_bad: int = 2):
        """Append ``extra_bad`` checksum-mismatched entries to a snapshot."""
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        good = next(iter(snapshot["entries"].values()))
        for index in range(extra_bad):
            snapshot["entries"][f"bad-{index}"] = {
                "payload": good["payload"] + " ",
                "checksum": good["checksum"],
            }
        snapshot["entry_count"] = len(snapshot["entries"])
        path.write_text(json.dumps(snapshot), encoding="utf-8")

    def test_compact_drops_dead_entries(self, tmp_path, populated_cache):
        cache, fingerprint = populated_cache
        store = PlanStore(tmp_path / "plans.json")
        path = store.save(cache)
        self._corrupt_snapshot(path, extra_bad=2)

        assert store.compact() == 2
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        assert snapshot["entry_count"] == 1
        assert list(snapshot["entries"]) == [fingerprint]
        # A post-compaction load is clean.
        result = PlanStore(path).load_into(PlanCache())
        assert result.loaded == 1 and result.quarantined == {}

    def test_compact_missing_snapshot_is_noop(self, tmp_path):
        assert PlanStore(tmp_path / "absent.json").compact() == 0

    def test_compact_upgrades_legacy_v1(self, tmp_path, populated_cache):
        cache, fingerprint = populated_cache
        path = cache.save(tmp_path / "v1.json")
        store = PlanStore(path)
        assert store.compact() == 0
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        assert snapshot["format_version"] == STORE_FORMAT_VERSION
        assert snapshot["entries"][fingerprint]["checksum"] == payload_checksum(
            snapshot["entries"][fingerprint]["payload"]
        )

    def test_auto_compaction_threshold(self, tmp_path, populated_cache):
        cache, _ = populated_cache
        store = PlanStore(tmp_path / "plans.json", auto_compact_threshold=2)
        path = store.save(cache)
        self._corrupt_snapshot(path, extra_bad=2)

        result = store.load_into(PlanCache())
        assert len(result.quarantined) == 2
        # The threshold was met, so the snapshot was rewritten clean.
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        assert snapshot["entry_count"] == 1
        rerun = store.load_into(PlanCache())
        assert rerun.quarantined == {}

    def test_below_threshold_keeps_snapshot(self, tmp_path, populated_cache):
        cache, _ = populated_cache
        store = PlanStore(tmp_path / "plans.json", auto_compact_threshold=5)
        path = store.save(cache)
        self._corrupt_snapshot(path, extra_bad=2)
        store.load_into(PlanCache())
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        assert snapshot["entry_count"] == 3  # untouched


class TestPartitionedSave:
    def test_save_filters_to_given_fingerprints(self, tmp_path, tiny_tasks):
        planner = ExecutionPlanner(make_cluster(4, devices_per_node=4))
        cache = PlanCache(capacity=8)
        plans = [
            planner.plan(tiny_tasks),
            planner.plan(tiny_tasks[:1]),
        ]
        for plan in plans:
            cache.put(plan.fingerprint, plan)
        store = PlanStore(tmp_path / "part.json")
        store.save(cache, fingerprints=[plans[0].fingerprint])
        snapshot = json.loads(
            (tmp_path / "part.json").read_text(encoding="utf-8")
        )
        assert list(snapshot["entries"]) == [plans[0].fingerprint]
        assert snapshot["entry_count"] == 1

    def test_save_with_empty_selection_writes_empty_snapshot(
        self, tmp_path, populated_cache
    ):
        cache, _ = populated_cache
        store = PlanStore(tmp_path / "empty.json")
        store.save(cache, fingerprints=[])
        result = PlanStore(tmp_path / "empty.json").load_into(PlanCache())
        assert result.loaded == 0 and result.quarantined == {}
