"""Integration tests: the qualitative claims of the paper's evaluation hold.

These tests run the real model workloads through the full pipeline (planner +
runtime engine + baselines) on small-but-realistic clusters and check the
*shape* of the paper's results rather than absolute numbers.
"""

import pytest

from repro.experiments.harness import run_comparison, run_single_system
from repro.experiments.workloads import clip_workload, ofasys_workload, qwen_val_workload
from repro.runtime.param_groups import ParameterDeviceGroupPool


@pytest.fixture(scope="module")
def clip4_16():
    """The Fig. 9 case-study workload: Multitask-CLIP, 4 tasks, 16 GPUs."""
    return run_comparison(
        clip_workload(4, 16),
        systems=("spindle", "spindle-optimus", "distmm-mt", "deepspeed"),
    )


class TestEndToEndOrdering:
    def test_spindle_is_fastest_on_the_case_study(self, clip4_16):
        assert clip4_16.best_system == "spindle"

    def test_spindle_speedup_within_paper_band(self, clip4_16):
        """The paper reports 1.2x-1.7x over DeepSpeed on Multitask-CLIP."""
        speedup = clip4_16.speedup("spindle")
        assert 1.1 <= speedup <= 2.5

    def test_spindle_beats_every_baseline_on_ofasys(self):
        comparison = run_comparison(
            ofasys_workload(4, 16),
            systems=("spindle", "distmm-mt", "deepspeed"),
        )
        assert comparison.best_system == "spindle"

    def test_spindle_advantage_grows_with_cluster_size(self):
        """Fig. 8: Spindle's speedup over DeepSpeed increases with the cluster."""
        small = run_comparison(clip_workload(4, 8), systems=("spindle", "deepspeed"))
        large = run_comparison(clip_workload(4, 32), systems=("spindle", "deepspeed"))
        assert large.speedup("spindle") > small.speedup("spindle")

    def test_spindle_advantage_grows_with_task_count(self):
        few = run_comparison(clip_workload(4, 32), systems=("spindle", "deepspeed"))
        many = run_comparison(clip_workload(10, 32), systems=("spindle", "deepspeed"))
        assert many.speedup("spindle") >= few.speedup("spindle") * 0.95
        assert many.speedup("spindle") > 1.3

    def test_distmm_helps_on_clip_but_not_on_ofasys(self):
        """§5.2: DistMM-MT gains on CLIP but shows poor performance on OFASys."""
        clip = run_comparison(clip_workload(4, 16), systems=("distmm-mt", "deepspeed"))
        ofasys = run_comparison(ofasys_workload(4, 16), systems=("distmm-mt", "deepspeed"))
        assert clip.speedup("distmm-mt") > 1.02
        assert ofasys.speedup("distmm-mt") < clip.speedup("distmm-mt")

    def test_qwen_val_ordering(self):
        comparison = run_comparison(
            qwen_val_workload(32),
            systems=("spindle", "spindle-optimus", "deepspeed"),
        )
        assert comparison.best_system == "spindle"
        assert comparison.speedup("spindle") > 1.05


class TestCaseStudyUtilization:
    def test_spindle_has_highest_cluster_utilization(self, clip4_16):
        """Fig. 9a: Spindle sustains the highest average cluster FLOP/s."""
        flops = {
            name: result.trace.cluster_average_flops()
            for name, result in clip4_16.results.items()
        }
        assert flops["spindle"] == max(flops.values())

    def test_spindle_device_utilization_dominates_deepspeed(self, clip4_16):
        """Fig. 9b: per-device utilization of Spindle exceeds DeepSpeed's."""
        spindle = clip4_16.results["spindle"].trace.device_utilization()
        deepspeed = clip4_16.results["deepspeed"].trace.device_utilization()
        spindle_mean = sum(spindle.values()) / len(spindle)
        deepspeed_mean = sum(deepspeed.values()) / len(deepspeed)
        assert spindle_mean > deepspeed_mean


class TestTimeBreakdown:
    def test_forward_backward_dominates(self, clip4_16):
        """Fig. 10: forward/backward accounts for the bulk of iteration time."""
        for result in clip4_16.results.values():
            assert result.breakdown.fraction("forward_backward") > 0.6

    def test_spindle_send_recv_share_is_small(self, clip4_16):
        """Fig. 10: inter-wave send/recv stays a small share of the iteration."""
        spindle = clip4_16.results["spindle"]
        assert spindle.breakdown.fraction("send_recv") < 0.15

    def test_sequential_placement_inflates_send_recv(self):
        """Fig. 10 ablation: naive placement multiplies inter-wave traffic."""
        workload = clip_workload(4, 16)
        _, locality = run_single_system(workload, "spindle")
        _, sequential = run_single_system(
            workload, "spindle", placement_strategy="sequential"
        )
        assert sequential.breakdown.send_recv >= locality.breakdown.send_recv


class TestOptimalityAndPlannerCost:
    def test_iteration_time_close_to_theoretical_optimum(self):
        """Fig. 11: Spindle stays within a modest factor of the C* lower bound."""
        system, result = run_single_system(clip_workload(4, 16), "spindle")
        optimum = system.last_plan.theoretical_optimum
        assert result.breakdown.forward_backward >= optimum * 0.95
        assert result.breakdown.forward_backward <= optimum * 1.35

    def test_planner_cost_is_seconds_not_minutes(self):
        """Fig. 12: the execution planner runs within a few seconds."""
        system, _ = run_single_system(clip_workload(10, 32), "spindle")
        assert system.last_planning_seconds < 3.0


class TestMemoryConsumption:
    def test_spindle_peak_memory_not_worse_than_deepspeed(self, clip4_16):
        """Appendix G: selective parameter storage keeps Spindle's memory low."""
        spindle = clip4_16.results["spindle"].peak_device_memory_bytes
        deepspeed = clip4_16.results["deepspeed"].peak_device_memory_bytes
        assert spindle <= deepspeed * 1.1

    def test_all_systems_fit_in_device_memory(self, clip4_16):
        capacity = clip_workload(4, 16).cluster().device_spec.memory_bytes
        for result in clip4_16.results.values():
            assert result.peak_device_memory_bytes <= capacity


class TestParameterSharing:
    def test_shared_encoder_gradients_have_cross_task_groups(self):
        system, _ = run_single_system(clip_workload(4, 16), "spindle")
        pool = ParameterDeviceGroupPool.from_plan(system.last_plan)
        multi_device_groups = [g for g in pool.groups if g.group_size > 1]
        assert multi_device_groups

    def test_spindle_seq_matches_deepspeed(self):
        """Appendix H: the Spindle engine without planning matches DeepSpeed."""
        comparison = run_comparison(
            clip_workload(4, 16), systems=("spindle-seq", "deepspeed")
        )
        assert comparison.speedup("spindle-seq") == pytest.approx(1.0, abs=0.1)
