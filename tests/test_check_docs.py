"""The docs checker (``tools/check_docs.py``): clean tree passes, broken
links and lint violations fail with pointed messages."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_repository_docs_are_clean(check_docs, capsys):
    assert check_docs.main([str(REPO_ROOT)]) == 0
    assert "pages clean" in capsys.readouterr().out


def test_handbook_pages_exist():
    for page in ("architecture.md", "events.md", "observability.md"):
        assert (REPO_ROOT / "docs" / page).is_file()


def _page(tmp_path, name, text):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def test_broken_relative_link_fails(check_docs, tmp_path):
    _page(tmp_path, "README.md", "# Title\n\nSee [gone](docs/missing.md).\n")
    problems = check_docs.check_pages(check_docs.default_targets(tmp_path), tmp_path)
    assert any("broken link target: docs/missing.md" in p for p in problems)


def test_broken_anchor_fails(check_docs, tmp_path):
    _page(tmp_path, "docs/a.md", "# A\n\n## Real section\n")
    _page(
        tmp_path,
        "README.md",
        "# Title\n\n[ok](docs/a.md#real-section) [bad](docs/a.md#nope)\n",
    )
    problems = check_docs.check_pages(check_docs.default_targets(tmp_path), tmp_path)
    assert any("broken anchor #nope" in p for p in problems)
    assert not any("real-section" in p for p in problems)


def test_link_escaping_repository_fails(check_docs, tmp_path):
    _page(tmp_path, "README.md", "# Title\n\n[out](../secrets.md)\n")
    problems = check_docs.check_pages(check_docs.default_targets(tmp_path), tmp_path)
    assert any("escapes the repository" in p for p in problems)


def test_external_links_are_skipped(check_docs, tmp_path):
    _page(
        tmp_path,
        "README.md",
        "# Title\n\n[p](https://ui.perfetto.dev) [m](mailto:x@example.com)\n",
    )
    assert check_docs.check_pages(
        check_docs.default_targets(tmp_path), tmp_path
    ) == []


def test_lint_catches_fences_heading_skips_and_multiple_h1(
    check_docs, tmp_path
):
    _page(
        tmp_path,
        "README.md",
        "# One\n\n#### Way too deep\n\n# Two\n\n```python\nunterminated\n",
    )
    problems = check_docs.check_pages(check_docs.default_targets(tmp_path), tmp_path)
    assert any("unbalanced code fences" in p for p in problems)
    assert any("skips from H1 to H4" in p for p in problems)
    assert any("expected exactly one H1, found 2" in p for p in problems)


def test_links_inside_code_are_ignored(check_docs, tmp_path):
    _page(
        tmp_path,
        "README.md",
        "# Title\n\n```\n[fake](not/a/file.md)\n```\n\n`[also](gone.md)`\n",
    )
    assert check_docs.check_pages(
        check_docs.default_targets(tmp_path), tmp_path
    ) == []


def test_github_slugs(check_docs):
    assert check_docs.github_slug("Performance engineering") == (
        "performance-engineering"
    )
    assert check_docs.github_slug("Observability (`repro.obs`)") == (
        "observability-reproobs"
    )
    assert check_docs.github_slug("The benchmark registry (`repro bench`)") == (
        "the-benchmark-registry-repro-bench"
    )
