"""Unit tests for the MPSP resource allocator (§3.3, Appendix B)."""

import pytest

from repro.core.allocator import (
    AllocationError,
    ResourceAllocator,
    default_valid_allocations,
    find_inverse_value,
)
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator, ScalingCurve
from repro.core.metagraph import MetaOp
from repro.costmodel.profiler import ProfileSample, SyntheticProfiler
from tests.conftest import make_layer_op


def make_metaop(index, num_ops, batch=8, op_type="text_layer", hidden=256, seq_len=64):
    ops = [
        make_layer_op(
            f"m{index}.{i}", op_type=op_type, batch=batch, hidden=hidden, seq_len=seq_len
        )
        for i in range(num_ops)
    ]
    return MetaOp(index=index, operators=ops)


def ideal_curve(unit_time=8.0, max_devices=16):
    """A perfectly scalable curve: T(n) = unit_time / n."""
    points = [ProfileSample(n, unit_time / n) for n in (1, 2, 4, 8, max_devices)]
    return ScalingCurve(points)


class TestValidAllocations:
    def test_divisors_and_multiples_of_batch(self):
        metaop = make_metaop(0, 2, batch=8)
        assert default_valid_allocations(metaop, 32) == [1, 2, 4, 8, 16, 24, 32]

    def test_small_cluster(self):
        metaop = make_metaop(0, 2, batch=6)
        assert default_valid_allocations(metaop, 4) == [1, 2, 3]

    def test_invalid_cluster_size(self):
        with pytest.raises(AllocationError):
            default_valid_allocations(make_metaop(0, 1), 0)


class TestFindInverseValue:
    def test_exact_grid_point(self):
        curve = ideal_curve(8.0)
        assert find_inverse_value(curve, 2.0, [1, 2, 4, 8]) == pytest.approx(4.0)

    def test_interpolates_between_grid_points(self):
        curve = ideal_curve(8.0)
        n = find_inverse_value(curve, 3.0, [1, 2, 4, 8])
        # Eq. (11) interpolates linearly between (2, T=4) and (4, T=2).
        assert 2.0 < n < 4.0

    def test_below_minimum_allocation(self):
        curve = ideal_curve(8.0)
        n = find_inverse_value(curve, 16.0, [1, 2, 4])
        assert n == pytest.approx(0.5)

    def test_saturates_at_maximum(self):
        curve = ideal_curve(8.0)
        assert find_inverse_value(curve, 0.1, [1, 2, 4]) == 4.0

    def test_invalid_inputs(self):
        curve = ideal_curve()
        with pytest.raises(AllocationError):
            find_inverse_value(curve, 0.0, [1, 2])
        with pytest.raises(AllocationError):
            find_inverse_value(curve, 1.0, [])


class TestContinuousSolution:
    def test_theorem1_on_identical_perfectly_scalable_metaops(self):
        """Two identical, perfectly scalable MetaOps split the cluster evenly."""
        allocator = ResourceAllocator(num_devices=8)
        metaops = [make_metaop(0, 4, batch=8), make_metaop(1, 4, batch=8)]
        curves = {0: ideal_curve(8.0), 1: ideal_curve(8.0)}
        solution = allocator.solve_continuous(metaops, curves)
        assert solution.allocations[0] == pytest.approx(4.0, rel=0.05)
        assert solution.allocations[1] == pytest.approx(4.0, rel=0.05)
        # All MetaOps finish together at C*: T(n*) * L = C*.
        for idx, metaop in zip((0, 1), metaops):
            finish = curves[idx].time(solution.allocations[idx]) * metaop.num_operators
            assert finish == pytest.approx(solution.c_star, rel=0.05)

    def test_heavier_metaop_receives_more_devices(self):
        allocator = ResourceAllocator(num_devices=8)
        metaops = [make_metaop(0, 8, batch=8), make_metaop(1, 2, batch=8)]
        curves = {0: ideal_curve(8.0), 1: ideal_curve(8.0)}
        solution = allocator.solve_continuous(metaops, curves)
        assert solution.allocations[0] > solution.allocations[1]
        assert solution.total_devices() <= 8 + 1e-6

    def test_capacity_constraint_respected(self, cluster16, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        curves = ScalabilityEstimator(SyntheticProfiler(cluster16)).estimate(metagraph)
        allocator = ResourceAllocator(num_devices=16)
        for level, indices in enumerate(metagraph.levels()):
            metaops = [metagraph.metaop(i) for i in indices]
            solution = allocator.solve_continuous(metaops, curves)
            assert solution.total_devices() <= 16 + 1e-6

    def test_abundant_resources_hit_lower_bound(self):
        """With plenty of devices, C* equals the slowest MetaOp at max allocation."""
        allocator = ResourceAllocator(num_devices=32)
        metaops = [make_metaop(0, 2, batch=4)]
        curve = ideal_curve(8.0, max_devices=32)
        solution = allocator.solve_continuous(metaops, {0: curve})
        valid_max = max(default_valid_allocations(metaops[0], 32))
        assert solution.c_star == pytest.approx(curve.time(valid_max) * 2, rel=1e-3)

    def test_empty_level_rejected(self):
        with pytest.raises(AllocationError):
            ResourceAllocator(4).solve_continuous([], {})

    def test_invalid_device_count(self):
        with pytest.raises(AllocationError):
            ResourceAllocator(0)


class TestBiPointDiscretization:
    def test_integer_optimum_yields_single_tuple(self):
        allocator = ResourceAllocator(num_devices=8)
        metaop = make_metaop(0, 6, batch=8)
        curve = ideal_curve(8.0)
        tuples = allocator.discretize(metaop, 4.0, curve.time(4.0) * 6, curve)
        assert len(tuples) == 1
        assert tuples[0].n_devices == 4
        assert tuples[0].layers == 6

    def test_fractional_optimum_splits_into_two_tuples(self):
        allocator = ResourceAllocator(num_devices=8)
        metaop = make_metaop(0, 12, batch=8)
        curve = ideal_curve(8.0)
        n_star = 1.5
        c_star = curve.time(n_star) * 12
        tuples = allocator.discretize(metaop, n_star, c_star, curve)
        assert len(tuples) == 2
        assert {t.n_devices for t in tuples} == {1, 2}
        # Condition (10a): the layer counts cover the whole MetaOp.
        assert sum(t.layers for t in tuples) == 12
        # Condition (10b): combined execution time approximately equals C*.
        total_time = sum(curve.time(t.n_devices) * t.layers for t in tuples)
        assert total_time == pytest.approx(c_star, rel=0.15)
        # The larger allocation is listed first (executed first).
        assert tuples[0].n_devices > tuples[1].n_devices

    def test_dummy_allocation_below_one_device(self):
        """n* < 1 (Fig. 5a MetaOp 3): all layers run on the smallest allocation."""
        allocator = ResourceAllocator(num_devices=4)
        metaop = make_metaop(0, 6, batch=8)
        curve = ideal_curve(8.0, max_devices=4)
        tuples = allocator.discretize(metaop, 0.6, 80.0, curve)
        assert len(tuples) == 1
        assert tuples[0].n_devices == 1
        assert tuples[0].layers == 6

    def test_optimum_above_max_valid_allocation(self):
        allocator = ResourceAllocator(num_devices=8)
        metaop = make_metaop(0, 4, batch=8)
        curve = ideal_curve(8.0)
        tuples = allocator.discretize(metaop, 12.0, curve.time(8) * 4, curve)
        assert len(tuples) == 1
        assert tuples[0].n_devices == 8


class TestAllocateLevel:
    def test_every_metaop_covered(self, cluster16, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        curves = ScalabilityEstimator(SyntheticProfiler(cluster16)).estimate(metagraph)
        allocator = ResourceAllocator(num_devices=16)
        allocations = allocator.allocate(metagraph, curves)
        assert set(allocations) == set(range(metagraph.num_levels))
        for level, allocation in allocations.items():
            for metaop in metagraph.metaops_at_level(level):
                assert allocation.total_layers(metaop.index) == metaop.num_operators
                for t in allocation.tuples_for(metaop.index):
                    assert 1 <= t.n_devices <= 16

    def test_c_star_recorded_per_level(self, cluster16, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        curves = ScalabilityEstimator(SyntheticProfiler(cluster16)).estimate(metagraph)
        allocations = ResourceAllocator(16).allocate(metagraph, curves)
        for allocation in allocations.values():
            assert allocation.c_star > 0
