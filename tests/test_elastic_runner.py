"""End-to-end elastic training runs: replanning, caching, determinism."""

import json

import pytest

from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC
from repro.elastic import (
    ClusterEvent,
    ElasticRunError,
    ElasticScenario,
    ElasticTrainingRunner,
    EventTimeline,
    ImmediateReplanPolicy,
    ReplanCostModel,
    SlowdownThresholdPolicy,
    flash_crowd_timeline,
    island_outage_timeline,
    random_failure_timeline,
)
from repro.elastic.events import (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    STRAGGLER_CLEAR,
    STRAGGLER_ONSET,
)
from tests.conftest import make_chain_task


@pytest.fixture
def tasks():
    return [
        make_chain_task("audio_task", {"audio": 2, "lm": 2}, batch=8),
        make_chain_task("vision_task", {"vision": 2, "lm": 2}, batch=4),
    ]


def scenario_with(timeline, iterations=60, nodes=2, per_node=4):
    return ElasticScenario(
        num_nodes=nodes,
        devices_per_node=per_node,
        device_spec=A800_SPEC,
        timeline=timeline,
        total_iterations=iterations,
        name="test",
    )


def fail(node, device, at):
    return ClusterEvent(DEVICE_FAILURE, at_iteration=at, node=node, device=device)


def recover(node, device, at):
    return ClusterEvent(DEVICE_RECOVERY, at_iteration=at, node=node, device=device)


class TestScenarioValidation:
    def test_events_beyond_horizon_rejected(self):
        timeline = EventTimeline([fail(0, 0, 60)])
        with pytest.raises(ElasticRunError):
            scenario_with(timeline, iterations=60)

    def test_empty_task_set_rejected(self, tasks):
        runner = ElasticTrainingRunner(scenario_with(EventTimeline()))
        with pytest.raises(ElasticRunError):
            runner.run([])


class TestElasticRun:
    def test_eventless_run_matches_baseline_exactly(self, tasks):
        result = ElasticTrainingRunner(scenario_with(EventTimeline())).run(tasks)
        assert result.total_seconds == pytest.approx(result.baseline_seconds)
        assert result.cumulative_slowdown == pytest.approx(1.0)
        assert result.replan_count == 0
        assert len(result.segments) == 1
        assert result.segments[0].num_iterations == 60

    def test_capacity_loss_forces_replan_and_charges_migration(self, tasks):
        timeline = EventTimeline([fail(0, 1, 20)])
        result = ElasticTrainingRunner(
            scenario_with(timeline), policy=SlowdownThresholdPolicy(10.0)
        ).run(tasks)
        assert result.replan_count == 1
        outcome = result.outcomes[0]
        assert outcome.forced and outcome.replanned
        assert outcome.migration is not None
        assert outcome.migration.total_seconds > 0
        assert outcome.num_devices == 7
        # The degraded plan runs slower: total exceeds the no-failure run.
        assert result.cumulative_slowdown > 1.0

    def test_recovery_to_known_topology_hits_the_plan_cache(self, tasks):
        timeline = EventTimeline([fail(0, 1, 20), recover(0, 1, 40)])
        result = ElasticTrainingRunner(
            scenario_with(timeline), policy=ImmediateReplanPolicy()
        ).run(tasks)
        assert result.replan_count == 2
        recovery = result.outcomes[1]
        assert recovery.replan is not None and recovery.replan.cache_hit
        # Cached replans charge the (much cheaper) cache-hit cost.
        model = ReplanCostModel()
        assert recovery.replan.charged_seconds == model.cached_plan_seconds

    def test_threshold_policy_rides_through_small_changes(self, tasks):
        onset = ClusterEvent(
            STRAGGLER_ONSET, at_iteration=20, node=0, severity=0.9
        )
        result = ElasticTrainingRunner(
            scenario_with(EventTimeline([onset])),
            policy=SlowdownThresholdPolicy(threshold=0.5),
        ).run(tasks)
        assert result.replan_count == 0
        outcome = result.outcomes[0]
        assert not outcome.forced and not outcome.replanned
        # Training continues on the old plan, paced by the straggler.
        assert outcome.stay_slowdown == pytest.approx(1.0 / 0.9)
        assert result.segments[-1].iteration_seconds > (
            result.segments[0].iteration_seconds
        )

    def test_severe_straggler_triggers_threshold_replan(self, tasks):
        onset = ClusterEvent(
            STRAGGLER_ONSET, at_iteration=20, node=0, severity=0.4
        )
        clear = ClusterEvent(STRAGGLER_CLEAR, at_iteration=40, node=0)
        result = ElasticTrainingRunner(
            scenario_with(EventTimeline([onset, clear])),
            policy=SlowdownThresholdPolicy(threshold=0.5),
        ).run(tasks)
        assert result.outcomes[0].replanned  # 2.5x estimated > 1.5x
        assert not result.outcomes[0].forced
        assert result.outcomes[0].migration is not None

    def test_flash_crowd_expansion_replans_and_adopts_capacity(self, tasks):
        timeline = flash_crowd_timeline(20, 2, 4, A800_SPEC)
        result = ElasticTrainingRunner(
            scenario_with(timeline), policy=SlowdownThresholdPolicy(threshold=0.1)
        ).run(tasks)
        outcome = result.outcomes[0]
        assert outcome.replanned and not outcome.forced  # 2x forgone > 1.1x
        assert outcome.estimated_slowdown == pytest.approx(2.0)
        assert outcome.num_devices == 16
        # Adopting the new capacity re-shards parameters onto it.
        assert outcome.migration is not None
        assert outcome.migration.total_bytes > 0
        # These toy tasks are sync-dominated, so the expansion must not make
        # iterations dramatically slower — but it need not speed them up.
        # (Total slowdown is dominated by the fixed replan/migration charges
        # against this tiny baseline, so compare pure training time.)
        assert result.training_seconds / result.baseline_seconds < 1.25

    def test_heterogeneous_expansion_plans_on_mixed_specs(self, tasks):
        timeline = flash_crowd_timeline(20, 1, 4, TEST_GPU_SPEC)
        runner = ElasticTrainingRunner(
            scenario_with(timeline), policy=ImmediateReplanPolicy()
        )
        result = runner.run(tasks)
        assert result.outcomes[0].replanned
        assert result.outcomes[0].num_devices == 12
        assert len(runner._planners) == 2  # one planner per topology signature

    def test_island_outage_and_return(self, tasks):
        timeline = island_outage_timeline(1, 4, at_iteration=20, recovery_at=40)
        result = ElasticTrainingRunner(
            scenario_with(timeline), policy=ImmediateReplanPolicy()
        ).run(tasks)
        # One replan for the outage (4 same-iteration failures), one for the
        # recovery group.
        assert result.replan_count == 2
        assert result.outcomes[0].num_devices == 4
        assert result.outcomes[1].num_devices == 8
        assert result.outcomes[1].replan.cache_hit

    def test_debounce_counts_event_groups(self, tasks):
        events = EventTimeline(
            [
                ClusterEvent(
                    STRAGGLER_ONSET, at_iteration=10, node=0, severity=0.8
                ),
                ClusterEvent(STRAGGLER_CLEAR, at_iteration=20, node=0),
            ]
        )
        from repro.elastic import DebouncedReplanPolicy

        result = ElasticTrainingRunner(
            scenario_with(events), policy=DebouncedReplanPolicy(min_groups=2)
        ).run(tasks)
        assert [outcome.replanned for outcome in result.outcomes] == [False, True]


class TestReportDeterminism:
    def test_identical_seeds_byte_identical_reports(self, tasks):
        def run():
            timeline = random_failure_timeline(2, 4, 60, 2, seed=5)
            runner = ElasticTrainingRunner(
                scenario_with(timeline), policy=SlowdownThresholdPolicy(0.1)
            )
            return runner.run(tasks)

        first = json.dumps(run().to_document(), sort_keys=True, indent=2)
        second = json.dumps(run().to_document(), sort_keys=True, indent=2)
        assert first == second

    def test_document_excludes_measured_wall_clock(self, tasks):
        timeline = EventTimeline([fail(0, 0, 20)])
        result = ElasticTrainingRunner(scenario_with(timeline)).run(tasks)
        document = json.dumps(result.to_document())
        assert "measured" not in document
        assert result.replan_measured_seconds > 0  # still tracked out-of-band

    def test_cumulative_curve_is_monotone_and_complete(self, tasks):
        timeline = EventTimeline([fail(0, 0, 20), recover(0, 0, 40)])
        result = ElasticTrainingRunner(
            scenario_with(timeline), policy=ImmediateReplanPolicy()
        ).run(tasks)
        curve = result.cumulative_curve()
        assert curve[-1][0] == 60
        assert curve[-1][1] == pytest.approx(result.total_seconds)
        iterations, times = zip(*curve)
        assert list(iterations) == sorted(iterations)
        assert list(times) == sorted(times)


class TestPerDeviceStragglerRuns:
    def test_single_gpu_straggler_slows_only_its_group(self, tasks):
        onset = ClusterEvent(
            STRAGGLER_ONSET, at_iteration=20, node=0, device=1, severity=0.5
        )
        result = ElasticTrainingRunner(
            scenario_with(EventTimeline([onset])),
            policy=SlowdownThresholdPolicy(threshold=10.0),
        ).run(tasks)
        outcome = result.outcomes[0]
        assert not outcome.replanned
        # Staying on the old plan paces the afflicted island (and only it) at
        # half rate; the worst per-group ratio is 2x.
        assert outcome.stay_slowdown == pytest.approx(2.0)

    def test_gpu_straggler_replan_plans_on_demoted_class(self, tasks):
        onset = ClusterEvent(
            STRAGGLER_ONSET, at_iteration=20, node=0, device=1, severity=0.4
        )
        clear = ClusterEvent(
            STRAGGLER_CLEAR, at_iteration=40, node=0, device=1
        )
        result = ElasticTrainingRunner(
            scenario_with(EventTimeline([onset, clear])),
            policy=ImmediateReplanPolicy(),
        ).run(tasks)
        assert result.outcomes[0].replanned
        # The demoted island forms its own spec class, so the replan lands on
        # a different substrate; the heal returns to the original topology
        # and is served from the plan cache.  (No iteration-time ordering is
        # asserted: the heterogeneity-aware replan may well *beat* the
        # baseline plan by concentrating these sync-dominated toy tasks on
        # the healthy island.)
        assert result.outcomes[0].topology_signature != (
            result.outcomes[1].topology_signature
        )
        assert result.outcomes[1].replan.cache_hit


class TestCheckpointIntervalRuns:
    def test_island_outage_charges_lost_progress(self, tasks):
        timeline = island_outage_timeline(1, 4, at_iteration=23, recovery_at=40)
        plain = ElasticTrainingRunner(
            scenario_with(timeline), policy=ImmediateReplanPolicy()
        ).run(tasks)
        from repro.elastic import MigrationCostModel

        charged = ElasticTrainingRunner(
            scenario_with(island_outage_timeline(1, 4, at_iteration=23, recovery_at=40)),
            policy=ImmediateReplanPolicy(),
            migration_model=MigrationCostModel(checkpoint_interval=10),
        ).run(tasks)
        outage = charged.outcomes[0].migration
        if outage.num_restored_groups > 0:
            assert outage.lost_iterations == 23 % 10
            assert outage.recompute_seconds > 0
            assert charged.overhead_seconds > plain.overhead_seconds
        else:
            # Survivors held every shard: nothing restored, nothing lost.
            assert outage.recompute_seconds == 0.0


class TestPlanServicePoolRuns:
    def test_service_backed_run_matches_direct_run(self, tasks):
        from repro.core.planner import ExecutionPlanner
        from repro.service import PlanServicePool

        timeline = island_outage_timeline(1, 4, at_iteration=20, recovery_at=40)
        direct = ElasticTrainingRunner(
            scenario_with(timeline), policy=ImmediateReplanPolicy()
        ).run(tasks)
        with PlanServicePool(lambda cluster: ExecutionPlanner(cluster)) as pool:
            served = ElasticTrainingRunner(
                scenario_with(
                    island_outage_timeline(1, 4, at_iteration=20, recovery_at=40)
                ),
                policy=ImmediateReplanPolicy(),
                planning_service=pool,
            ).run(tasks)
        assert json.dumps(direct.to_document(), sort_keys=True) == json.dumps(
            served.to_document(), sort_keys=True
        )

    def test_concurrent_jobs_share_plans_through_the_pool(self, tasks):
        from repro.core.planner import ExecutionPlanner
        from repro.service import PlanServicePool

        def timeline():
            return island_outage_timeline(1, 4, at_iteration=20, recovery_at=40)

        with PlanServicePool(lambda cluster: ExecutionPlanner(cluster)) as pool:
            first = ElasticTrainingRunner(
                scenario_with(timeline()),
                policy=ImmediateReplanPolicy(),
                planning_service=pool,
            ).run(tasks)
            second = ElasticTrainingRunner(
                scenario_with(timeline()),
                policy=ImmediateReplanPolicy(),
                planning_service=pool,
            ).run(tasks)
            # The recovery heals back to the initial topology's signature, so
            # the run touches two distinct substrates: healthy and outage.
            assert pool.num_services == 2
        assert not first.initial_plan.cache_hit
        # Every plan the second job needs is already in the shared cache.
        assert second.initial_plan.cache_hit
        assert all(
            outcome.replan.cache_hit
            for outcome in second.outcomes
            if outcome.replan is not None
        )
        assert second.overhead_seconds < first.overhead_seconds
