"""Tests for the DistMM-MT baseline (intra-task tower allocation)."""

import pytest

from repro.baselines.distmm import DistMMMTSystem
from repro.baselines.sequential import DeepSpeedSystem
from repro.graph.builder import build_unified_graph
from tests.conftest import make_chain_task


class TestTowerSplitting:
    def test_split_towers_on_contrastive_task(self, contrastive_task):
        graph = build_unified_graph([contrastive_task]).task_subgraph("pairing")
        towers, dependents = DistMMMTSystem._split_towers(graph)
        assert len(towers) == 2
        tower_types = {tower[0].op_type for tower in towers}
        assert tower_types == {"vision_layer", "text_layer"}
        assert [op.op_type for op in dependents] == ["contrastive_loss"]

    def test_split_towers_on_chain_task(self):
        task = make_chain_task("chain", {"enc": 3, "dec": 2})
        graph = build_unified_graph([task]).task_subgraph("chain")
        towers, dependents = DistMMMTSystem._split_towers(graph)
        assert len(towers) == 1
        assert len(towers[0]) + len(dependents) == 5


class TestTowerAllocation:
    def test_single_tower_gets_whole_cluster(self, two_island_cluster):
        system = DistMMMTSystem(two_island_cluster)
        task = make_chain_task("chain", {"enc": 3})
        graph = build_unified_graph([task]).task_subgraph("chain")
        towers, _ = system._split_towers(graph)
        assert system._allocate_towers(task, towers, 8) == [8]

    def test_two_towers_partition_the_cluster(self, two_island_cluster, contrastive_task):
        system = DistMMMTSystem(two_island_cluster)
        graph = build_unified_graph([contrastive_task]).task_subgraph("pairing")
        towers, _ = system._split_towers(graph)
        shares = system._allocate_towers(contrastive_task, towers, 8)
        assert sum(shares) == 8
        assert all(s >= 1 for s in shares)

    def test_heavier_tower_gets_more_devices(self, two_island_cluster):
        """When both towers scale, the FLOP-heavy tower gets the larger share."""
        from repro.costmodel.flops import make_contrastive_loss_op
        from repro.graph.task import SpindleTask
        from tests.conftest import make_layer_op

        task = SpindleTask("heavy_pair", batch_size=32)
        vision = [
            make_layer_op(
                f"heavy_pair.vision.layer{i}", task="heavy_pair",
                op_type="vision_layer", modality="vision",
                batch=32, seq_len=256, hidden=1024,
            )
            for i in range(6)
        ]
        text = [
            make_layer_op(
                f"heavy_pair.text.layer{i}", task="heavy_pair",
                op_type="text_layer", modality="text",
                batch=32, seq_len=64, hidden=256,
            )
            for i in range(2)
        ]
        task.add_module("vision", vision)
        task.add_module("text", text)
        task.add_module(
            "loss",
            [make_contrastive_loss_op("heavy_pair.loss", "heavy_pair", 32, 256)],
        )
        task.add_flow("vision", "loss")
        task.add_flow("text", "loss")

        system = DistMMMTSystem(two_island_cluster)
        graph = build_unified_graph([task]).task_subgraph("heavy_pair")
        towers, _ = system._split_towers(graph)
        shares = system._allocate_towers(task, towers, 8)
        flops = [sum(op.flops for op in tower) for tower in towers]
        heavier = 0 if flops[0] >= flops[1] else 1
        assert shares[heavier] > shares[1 - heavier]


class TestEndToEnd:
    def test_iteration_result_structure(self, two_island_cluster, tiny_tasks):
        result = DistMMMTSystem(two_island_cluster).run_iteration(tiny_tasks)
        assert result.iteration_time > 0
        assert result.breakdown.send_recv == 0.0
        assert result.num_waves == len(tiny_tasks)

    def test_rejects_empty_tasks(self, two_island_cluster):
        with pytest.raises(ValueError):
            DistMMMTSystem(two_island_cluster).run_iteration([])

    def test_beats_deepspeed_on_multi_tower_tasks(self, cluster16):
        """Intra-task tower parallelism pays off on CLIP-style tasks (§5.2)."""
        from repro.models.multitask_clip import multitask_clip_tasks

        tasks = multitask_clip_tasks(4)
        distmm = DistMMMTSystem(cluster16).run_iteration(tasks)
        deepspeed = DeepSpeedSystem(cluster16).run_iteration(tasks)
        assert distmm.iteration_time < deepspeed.iteration_time

    def test_capability_flags(self):
        assert DistMMMTSystem.capabilities.intra_task_aware
        assert not DistMMMTSystem.capabilities.inter_task_aware
