"""Unit tests for the operator-level IR (TensorSpec, Operator, DataFlow)."""

import pytest

from repro.graph.ops import FP16_BYTES, DataFlow, Operator, TensorSpec


class TestTensorSpec:
    def test_numel_and_bytes(self):
        spec = TensorSpec(batch=2, seq_len=3, hidden=4)
        assert spec.numel == 24
        assert spec.bytes == 24 * FP16_BYTES

    def test_as_tuple(self):
        assert TensorSpec(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_with_batch_changes_only_batch(self):
        spec = TensorSpec(batch=2, seq_len=5, hidden=7)
        resized = spec.with_batch(8)
        assert resized.batch == 8
        assert resized.seq_len == 5
        assert resized.hidden == 7

    @pytest.mark.parametrize("batch,seq,hidden", [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-1, 1, 1)])
    def test_rejects_non_positive_dimensions(self, batch, seq, hidden):
        with pytest.raises(ValueError):
            TensorSpec(batch=batch, seq_len=seq, hidden=hidden)

    def test_equality_used_for_contraction(self):
        assert TensorSpec(2, 3, 4) == TensorSpec(2, 3, 4)
        assert TensorSpec(2, 3, 4) != TensorSpec(2, 3, 5)


class TestOperator:
    def make(self, **overrides):
        defaults = dict(
            name="op",
            op_type="text_layer",
            task="t",
            modality="text",
            input_spec=TensorSpec(2, 4, 8),
            flops=1e9,
            param_bytes=1000.0,
            activation_bytes=64.0,
            param_key="shared.layer0",
        )
        defaults.update(overrides)
        return Operator(**defaults)

    def test_basic_attributes(self):
        op = self.make()
        assert op.batch_size == 2
        assert op.param_count == 500.0
        assert op.workload_signature() == ("text_layer", (2, 4, 8))

    def test_activation_bytes_defaults_to_input_spec(self):
        op = self.make(activation_bytes=0.0)
        assert op.activation_bytes == op.input_spec.bytes

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            self.make(name="")

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            self.make(flops=-1.0)

    def test_rejects_negative_param_bytes(self):
        with pytest.raises(ValueError):
            self.make(param_bytes=-1.0)

    def test_renamed_preserves_workload(self):
        op = self.make()
        clone = op.renamed("other")
        assert clone.name == "other"
        assert clone.flops == op.flops
        assert clone.workload_signature() == op.workload_signature()
        assert clone.metadata is not op.metadata

    def test_same_type_different_shape_has_different_signature(self):
        a = self.make(input_spec=TensorSpec(2, 4, 8))
        b = self.make(name="b", input_spec=TensorSpec(2, 8, 8))
        assert a.workload_signature() != b.workload_signature()


class TestDataFlow:
    def test_valid_flow(self):
        flow = DataFlow(src="a", dst="b", volume_bytes=128.0)
        assert flow.volume_bytes == 128.0

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            DataFlow(src="a", dst="a", volume_bytes=1.0)

    def test_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            DataFlow(src="a", dst="b", volume_bytes=-1.0)
