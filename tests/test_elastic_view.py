"""The mutable cluster view: applying events, deriving fresh topologies."""

import pytest

from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC
from repro.cluster.topology import make_cluster
from repro.elastic.events import (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    NODE_JOIN,
    NODE_LEAVE,
    STRAGGLER_CLEAR,
    STRAGGLER_ONSET,
    ClusterEvent,
)
from repro.elastic.view import ElasticClusterView, ElasticViewError, device_key


def make_view(num_nodes=2, per_node=4, spec=A800_SPEC):
    return ElasticClusterView(
        num_nodes=num_nodes, devices_per_node=per_node, device_spec=spec
    )


def fail(node, device, at=1):
    return ClusterEvent(DEVICE_FAILURE, at_iteration=at, node=node, device=device)


def recover(node, device, at=1):
    return ClusterEvent(DEVICE_RECOVERY, at_iteration=at, node=node, device=device)


class TestSnapshotDerivation:
    def test_healthy_view_matches_make_cluster_signature(self):
        snapshot = make_view().snapshot()
        reference = make_cluster(8, devices_per_node=4)
        assert snapshot.topology.signature() == reference.signature()
        assert snapshot.device_keys == tuple(
            device_key(n, d) for n in range(2) for d in range(4)
        )

    def test_device_failure_shrinks_island_and_remaps_ids(self):
        view = make_view()
        view.apply(fail(0, 1))
        snapshot = view.snapshot()
        assert snapshot.topology.num_devices == 7
        assert snapshot.topology.island_sizes == (3, 4)
        # Contiguous ids; the dead device's key is gone from the mapping.
        assert snapshot.id_of(device_key(0, 0)) == 0
        assert snapshot.id_of(device_key(0, 1)) is None
        assert snapshot.id_of(device_key(0, 2)) == 1
        assert snapshot.id_of(device_key(1, 0)) == 3

    def test_island_drops_entirely_when_all_devices_fail(self):
        view = make_view()
        for device in range(4):
            view.apply(fail(0, device))
        snapshot = view.snapshot()
        assert snapshot.topology.num_nodes == 1
        assert snapshot.node_ids == (1,)
        assert snapshot.topology.num_devices == 4

    def test_recovery_restores_the_original_signature(self):
        view = make_view()
        healthy = view.snapshot().signature
        view.apply(fail(1, 2))
        assert view.snapshot().signature != healthy
        view.apply(recover(1, 2))
        assert view.snapshot().signature == healthy

    def test_node_join_with_different_spec_is_heterogeneous(self):
        view = make_view()
        view.apply(
            ClusterEvent(NODE_JOIN, at_iteration=1, spec=TEST_GPU_SPEC, num_devices=4)
        )
        snapshot = view.snapshot()
        assert snapshot.topology.num_nodes == 3
        assert not snapshot.topology.is_homogeneous
        assert snapshot.topology.node_specs[2] == TEST_GPU_SPEC
        assert snapshot.node_ids == (0, 1, 2)
        # Joined node's devices get fresh stable keys under the new node id.
        assert snapshot.id_of(device_key(2, 0)) == 8

    def test_node_leave_never_recycles_ids(self):
        view = make_view()
        view.apply(ClusterEvent(NODE_LEAVE, at_iteration=1, node=0))
        view.apply(
            ClusterEvent(NODE_JOIN, at_iteration=2, spec=A800_SPEC, num_devices=4)
        )
        snapshot = view.snapshot()
        assert snapshot.node_ids == (1, 2)  # node 0's id is retired

    def test_straggler_degrades_and_clears(self):
        view = make_view()
        view.apply(
            ClusterEvent(STRAGGLER_ONSET, at_iteration=1, node=0, severity=0.5)
        )
        degraded = view.snapshot()
        assert view.straggling_nodes() == [0]
        spec = degraded.topology.node_specs[0]
        assert spec.achievable_fraction == pytest.approx(
            A800_SPEC.achievable_fraction * 0.5
        )
        assert degraded.topology.min_achievable_flops < A800_SPEC.achievable_flops
        view.apply(ClusterEvent(STRAGGLER_CLEAR, at_iteration=2, node=0))
        assert view.straggling_nodes() == []
        assert view.snapshot().signature == make_view().snapshot().signature

    def test_spec_of_node_maps_stable_ids(self):
        view = make_view()
        view.apply(
            ClusterEvent(STRAGGLER_ONSET, at_iteration=1, node=1, severity=0.5)
        )
        snapshot = view.snapshot()
        assert snapshot.spec_of_node(0) == A800_SPEC
        assert snapshot.spec_of_node(1).achievable_fraction < (
            A800_SPEC.achievable_fraction
        )
        assert snapshot.spec_of_node(7) is None


class TestEventStrictness:
    def test_double_failure_rejected(self):
        view = make_view()
        view.apply(fail(0, 0))
        with pytest.raises(ElasticViewError):
            view.apply(fail(0, 0))

    def test_recovering_an_alive_device_rejected(self):
        with pytest.raises(ElasticViewError):
            make_view().apply(recover(0, 0))

    def test_unknown_node_or_slot_rejected(self):
        view = make_view()
        with pytest.raises(ElasticViewError):
            view.apply(fail(9, 0))
        with pytest.raises(ElasticViewError):
            view.apply(fail(0, 9))
        view.apply(ClusterEvent(NODE_LEAVE, at_iteration=1, node=1))
        with pytest.raises(ElasticViewError):
            view.apply(fail(1, 0))

    def test_straggler_events_are_idempotent(self):
        view = make_view()
        view.apply(ClusterEvent(STRAGGLER_CLEAR, at_iteration=1, node=0))  # no-op
        view.apply(
            ClusterEvent(STRAGGLER_ONSET, at_iteration=2, node=0, severity=0.5)
        )
        view.apply(
            ClusterEvent(STRAGGLER_ONSET, at_iteration=3, node=0, severity=0.8)
        )
        spec = view.snapshot().topology.node_specs[0]
        assert spec.achievable_fraction == pytest.approx(
            A800_SPEC.achievable_fraction * 0.8
        )

    def test_last_device_cannot_vanish(self):
        view = make_view(num_nodes=1, per_node=1)
        view.apply(fail(0, 0))
        with pytest.raises(ElasticViewError):
            view.snapshot()

    def test_from_cluster_round_trip(self):
        cluster = make_cluster(16, devices_per_node=8)
        snapshot = ElasticClusterView.from_cluster(cluster).snapshot()
        assert snapshot.topology.signature() == cluster.signature()


class TestPerDeviceStragglers:
    def test_device_scoped_onset_demotes_only_its_node(self):
        view = make_view()
        view.apply(
            ClusterEvent(
                STRAGGLER_ONSET, at_iteration=1, node=0, device=2, severity=0.5
            )
        )
        snapshot = view.snapshot()
        specs = snapshot.topology.node_specs
        # The afflicted island paces on its slowest member; the other island
        # keeps its healthy spec.
        assert specs[0].achievable_fraction == pytest.approx(
            A800_SPEC.achievable_fraction * 0.5
        )
        assert specs[1] == A800_SPEC
        assert view.straggling_nodes() == [0]

    def test_device_scoped_clear_heals_only_its_slot(self):
        view = make_view()
        for device in (1, 3):
            view.apply(
                ClusterEvent(
                    STRAGGLER_ONSET,
                    at_iteration=1,
                    node=0,
                    device=device,
                    severity=0.5,
                )
            )
        view.apply(
            ClusterEvent(STRAGGLER_CLEAR, at_iteration=2, node=0, device=1)
        )
        # Slot 3 still straggles, so the island stays demoted.
        assert view.straggling_nodes() == [0]
        view.apply(
            ClusterEvent(STRAGGLER_CLEAR, at_iteration=3, node=0, device=3)
        )
        assert view.straggling_nodes() == []
        assert view.snapshot().topology.node_specs[0] == A800_SPEC

    def test_node_scoped_events_set_every_slot(self):
        view = make_view()
        view.apply(
            ClusterEvent(STRAGGLER_ONSET, at_iteration=1, node=1, severity=0.25)
        )
        # A device-scoped clear on one slot cannot heal the node: the other
        # slots still carry the node-scoped severity.
        view.apply(
            ClusterEvent(STRAGGLER_CLEAR, at_iteration=2, node=1, device=0)
        )
        assert view.straggling_nodes() == [1]
        view.apply(ClusterEvent(STRAGGLER_CLEAR, at_iteration=3, node=1))
        assert view.straggling_nodes() == []

    def test_dead_straggling_device_does_not_demote_the_group(self):
        """Pacing follows the slowest *alive* member: once the straggling
        device fails outright, the survivors run at full rate."""
        view = make_view()
        view.apply(
            ClusterEvent(
                STRAGGLER_ONSET, at_iteration=1, node=0, device=2, severity=0.5
            )
        )
        view.apply(fail(0, 2, at=2))
        snapshot = view.snapshot()
        assert snapshot.topology.node_specs[0] == A800_SPEC
        assert snapshot.topology.island_sizes[0] == 3

    def test_device_straggler_out_of_range_rejected(self):
        view = make_view()
        with pytest.raises(ElasticViewError):
            view.apply(
                ClusterEvent(
                    STRAGGLER_ONSET, at_iteration=1, node=0, device=9, severity=0.5
                )
            )

    def test_per_device_straggler_creates_distinct_spec_class(self):
        view = make_view()
        view.apply(
            ClusterEvent(
                STRAGGLER_ONSET, at_iteration=1, node=0, device=0, severity=0.5
            )
        )
        topology = view.snapshot().topology
        assert topology.num_spec_classes == 2
        fast, slow = topology.spec_classes()
        assert fast.islands == (1,)
        assert slow.islands == (0,)
