"""Property-based tests (hypothesis) for the planner's core invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import make_cluster
from repro.core.allocator import ResourceAllocator, default_valid_allocations
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalingCurve
from repro.core.metagraph import MetaOp
from repro.core.scheduler import WavefrontScheduler
from repro.costmodel.comm import ring_allreduce_time
from repro.costmodel.profiler import ProfileSample
from repro.costmodel.timing import ExecutionTimeModel
from repro.graph.graph import ComputationGraph
from repro.graph.ops import TensorSpec
from tests.conftest import make_layer_op

# ---------------------------------------------------------------- strategies

batch_sizes = st.sampled_from([1, 2, 4, 8, 16, 32, 64])
hidden_sizes = st.sampled_from([128, 256, 512, 1024])
seq_lens = st.sampled_from([16, 64, 128, 256])


@st.composite
def scaling_curves(draw):
    """Random decreasing-ish profiles over power-of-two allocations."""
    base = draw(st.floats(min_value=1e-4, max_value=1.0))
    decay = draw(st.floats(min_value=0.3, max_value=1.0))
    noise = draw(
        st.lists(st.floats(min_value=0.9, max_value=1.1), min_size=5, max_size=5)
    )
    samples = []
    time = base
    for i, n in enumerate([1, 2, 4, 8, 16]):
        samples.append(ProfileSample(n, max(1e-9, time * noise[i])))
        time *= decay
    return ScalingCurve(samples)


@st.composite
def metaop_specs(draw, index=0):
    layers = draw(st.integers(min_value=1, max_value=24))
    batch = draw(batch_sizes)
    hidden = draw(hidden_sizes)
    seq = draw(seq_lens)
    ops = [
        make_layer_op(
            f"prop{index}.{i}",
            op_type=f"type{index}",
            batch=batch,
            hidden=hidden,
            seq_len=seq,
        )
        for i in range(layers)
    ]
    return MetaOp(index=index, operators=ops, level=0)


@st.composite
def levels(draw):
    """A random MetaLevel: MetaOps plus fitted curves plus a cluster size."""
    num_devices = draw(st.sampled_from([2, 4, 8, 16]))
    num_metaops = draw(st.integers(min_value=1, max_value=5))
    metaops = []
    curves = {}
    for i in range(num_metaops):
        metaops.append(draw(metaop_specs(index=i)))
        curves[i] = draw(scaling_curves())
    return num_devices, metaops, curves


# ------------------------------------------------------------------ estimator


@given(scaling_curves())
@settings(max_examples=50, deadline=None)
def test_scaling_curves_are_non_increasing(curve):
    times = [curve.time(n) for n in range(1, 17)]
    for slower, faster in zip(times, times[1:]):
        assert faster <= slower + 1e-12


@given(scaling_curves(), st.floats(min_value=1.0, max_value=16.0))
@settings(max_examples=50, deadline=None)
def test_inverse_is_consistent_with_time(curve, n):
    target = curve.time(n)
    recovered = curve.inverse(target)
    assert curve.time(recovered) <= target * (1 + 1e-6)


# ------------------------------------------------------------------ allocator


@given(levels())
@settings(max_examples=30, deadline=None)
def test_continuous_allocation_respects_capacity(level):
    num_devices, metaops, curves = level
    allocator = ResourceAllocator(num_devices)
    solution = allocator.solve_continuous(metaops, curves)
    assert solution.c_star > 0
    assert solution.total_devices() <= num_devices + 1e-6
    for n in solution.allocations.values():
        assert n > 0


@given(levels())
@settings(max_examples=30, deadline=None)
def test_discretized_allocation_covers_all_layers(level):
    num_devices, metaops, curves = level
    allocator = ResourceAllocator(num_devices)
    allocation = allocator.allocate_level(0, metaops, curves)
    for metaop in metaops:
        tuples = allocation.tuples_for(metaop.index)
        assert sum(t.layers for t in tuples) == metaop.num_operators
        valid = default_valid_allocations(metaop, num_devices)
        for t in tuples:
            assert t.n_devices in valid


# ------------------------------------------------------------------ scheduler


@given(levels())
@settings(max_examples=30, deadline=None)
def test_wavefront_schedule_invariants(level):
    num_devices, metaops, curves = level
    allocator = ResourceAllocator(num_devices)
    allocation = allocator.allocate_level(0, metaops, curves)
    scheduler = WavefrontScheduler(num_devices)
    waves, end = scheduler.schedule_level(allocation, metaops, curves)
    # Capacity respected and all layers scheduled exactly once.
    for wave in waves:
        assert wave.devices_used <= num_devices
        wave.validate(num_devices)
    for metaop in metaops:
        scheduled = sum(
            e.layers for w in waves for e in w.entries if e.metaop_index == metaop.index
        )
        assert scheduled == metaop.num_operators
    # Waves are contiguous in time.
    previous_end = 0.0
    for wave in waves:
        assert wave.start >= previous_end - 1e-9
        previous_end = wave.end
    assert end == previous_end
    # Wave count bounded: each wave drains at least one ASL-tuple.
    total_tuples = sum(len(allocation.tuples_for(m.index)) for m in metaops)
    assert len(waves) <= total_tuples + len(metaops)


# ----------------------------------------------------------------- contraction


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), batch_sizes, seq_lens),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_contraction_preserves_operators_on_random_chains(spec):
    graph = ComputationGraph()
    previous = None
    for i, (op_type, batch, seq) in enumerate(spec):
        name = f"op{i}"
        graph.add_operator(
            make_layer_op(name, op_type=f"{op_type}_layer", batch=batch, seq_len=seq)
        )
        if previous is not None:
            graph.add_flow(previous, name)
        previous = name
    metagraph = contract_graph(graph)
    assert metagraph.num_operators == graph.num_operators
    # Within every MetaOp all operators share one workload signature.
    for metaop in metagraph.metaops.values():
        signatures = {op.workload_signature() for op in metaop.operators}
        assert len(signatures) == 1
    # Levels increase along every edge.
    for (src, dst) in metagraph.edges:
        assert metagraph.metaop(src).level < metagraph.metaop(dst).level


# ------------------------------------------------------------------ cost model


@given(batch_sizes, seq_lens, hidden_sizes, st.sampled_from([1, 2, 4, 8, 16, 32]))
@settings(max_examples=60, deadline=None)
def test_operator_time_is_positive_and_bounded(batch, seq, hidden, devices):
    cluster = make_cluster(32)
    model = ExecutionTimeModel(cluster)
    op = make_layer_op("x", batch=batch, seq_len=seq, hidden=hidden)
    time = model.operator_time(op, devices)
    assert time > 0
    assert math.isfinite(time)
    # Achieved throughput can never exceed the allocation's peak.
    achieved = model.achieved_flops_per_second(op, devices)
    assert achieved <= devices * cluster.device_spec.peak_flops * (1 + 1e-9)


@given(
    st.floats(min_value=0, max_value=1e10),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_allreduce_time_non_negative_and_monotone_in_volume(volume, group):
    cluster = make_cluster(8)
    link = cluster.intra_island
    time = ring_allreduce_time(volume, group, link)
    assert time >= 0
    assert ring_allreduce_time(volume * 2, group, link) >= time


@given(batch_sizes, st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_valid_allocations_divide_or_are_divided_by_batch(batch, num_devices):
    op = make_layer_op("x", batch=batch)
    metaop = MetaOp(index=0, operators=[op])
    valid = default_valid_allocations(metaop, num_devices)
    assert valid
    for n in valid:
        assert 1 <= n <= num_devices
        assert batch % n == 0 or n % batch == 0


@given(st.integers(min_value=1, max_value=4096))
@settings(max_examples=40, deadline=None)
def test_tensor_spec_bytes_consistent(numel_seed):
    spec = TensorSpec(batch=1, seq_len=numel_seed, hidden=3)
    assert spec.bytes == spec.numel * 2
