"""BenchResult schema: JSON round-trip and threshold comparison."""

import json

import pytest

from repro.bench import (
    DEFAULT_REGRESSION_THRESHOLD,
    SCHEMA_VERSION,
    BenchResult,
    Metric,
    SchemaError,
    compare_results,
    informational,
    load_results,
)
from repro.bench.baseline import (
    STATUS_IMPROVED,
    STATUS_INFO,
    STATUS_MISSING,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSED,
)


def make_result(name="demo", **metrics):
    metrics = metrics or {
        "iteration_ms": Metric(120.0, "ms"),
        "speedup": Metric(1.4, "x", higher_is_better=True),
        "wall_seconds": informational(0.8, "s"),
    }
    return BenchResult(
        name=name,
        metrics=metrics,
        figure="fig08",
        stage="simulation",
        tags=("figure", "smoke"),
        workloads=("multitask-clip-4tasks-8gpus",),
        workload_fingerprint="abc123",
        metadata={"git_commit": "deadbeef", "duration_seconds": 0.5},
    )


class TestMetric:
    def test_defaults(self):
        metric = Metric(3.0)
        assert not metric.higher_is_better
        assert metric.regression_threshold == DEFAULT_REGRESSION_THRESHOLD
        assert metric.gated

    def test_informational_is_not_gated(self):
        assert not informational(1.0, "s").gated

    def test_round_trip(self):
        metric = Metric(2.5, "x", higher_is_better=True, regression_threshold=0.1)
        assert Metric.from_dict(metric.to_dict()) == metric

    def test_from_dict_requires_value(self):
        with pytest.raises(SchemaError):
            Metric.from_dict({"unit": "ms"})


class TestBenchResultSerialization:
    def test_json_round_trip(self):
        result = make_result()
        restored = BenchResult.from_json(result.to_json())
        assert restored.name == result.name
        assert restored.metrics == result.metrics
        assert restored.figure == "fig08"
        assert restored.stage == "simulation"
        assert set(restored.tags) == set(result.tags)
        assert restored.workloads == result.workloads
        assert restored.workload_fingerprint == "abc123"
        assert restored.metadata["git_commit"] == "deadbeef"

    def test_document_schema_fields(self):
        document = make_result().to_dict()
        assert document["schema_version"] == SCHEMA_VERSION
        for key in ("name", "figure", "stage", "tags", "metrics", "workloads",
                    "workload_fingerprint", "metadata"):
            assert key in document
        metric_doc = document["metrics"]["iteration_ms"]
        assert set(metric_doc) == {
            "value", "unit", "higher_is_better", "regression_threshold"
        }

    def test_save_and_load(self, tmp_path):
        result = make_result()
        path = result.save(tmp_path)
        assert path.name == "BENCH_demo.json"
        assert BenchResult.load(path).metrics == result.metrics

    def test_load_results_directory(self, tmp_path):
        make_result("one").save(tmp_path)
        make_result("two").save(tmp_path)
        results = load_results(tmp_path)
        assert sorted(results) == ["one", "two"]

    def test_load_results_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "nope")

    def test_rejects_wrong_schema_version(self):
        document = make_result().to_dict()
        document["schema_version"] = 999
        with pytest.raises(SchemaError):
            BenchResult.from_dict(document)

    def test_rejects_invalid_json(self):
        with pytest.raises(SchemaError):
            BenchResult.from_json("not json")
        with pytest.raises(SchemaError):
            BenchResult.from_json(json.dumps(["a", "list"]))


def one_metric_sets(baseline_value, current_value, **kwargs):
    baseline = {"bench": make_result("bench", m=Metric(baseline_value, **kwargs))}
    current = {"bench": make_result("bench", m=Metric(current_value, **kwargs))}
    return baseline, current


class TestCompare:
    def test_within_threshold_passes(self):
        comparison = compare_results(*one_metric_sets(100.0, 110.0))
        assert comparison.passed
        assert comparison.deltas[0].status == STATUS_OK

    def test_regression_past_threshold_fails(self):
        comparison = compare_results(*one_metric_sets(100.0, 130.0))
        assert not comparison.passed
        [delta] = comparison.regressions
        assert delta.metric == "m"
        assert delta.delta_fraction == pytest.approx(0.3)

    def test_improvement_is_not_a_failure(self):
        comparison = compare_results(*one_metric_sets(100.0, 60.0))
        assert comparison.passed
        assert comparison.deltas[0].status == STATUS_IMPROVED

    def test_higher_is_better_direction(self):
        comparison = compare_results(
            *one_metric_sets(2.0, 1.4, higher_is_better=True)
        )
        assert not comparison.passed
        comparison = compare_results(
            *one_metric_sets(2.0, 2.6, higher_is_better=True)
        )
        assert comparison.passed
        assert comparison.deltas[0].status == STATUS_IMPROVED

    def test_two_sided_invariant_fails_in_both_directions(self):
        from repro.bench import invariant

        def sets(baseline_value, current_value, threshold=0.0):
            return (
                {"b": make_result("b", m=invariant(baseline_value, threshold=threshold))},
                {"b": make_result("b", m=invariant(current_value, threshold=threshold))},
            )

        assert compare_results(*sets(50.0, 50.0)).passed
        assert not compare_results(*sets(50.0, 51.0)).passed
        # A drop is a regression too — never classified as an improvement.
        comparison = compare_results(*sets(50.0, 49.0))
        assert not comparison.passed
        assert comparison.deltas[0].status == STATUS_REGRESSED
        assert compare_results(*sets(100.0, 100.5, threshold=0.01)).passed
        assert not compare_results(*sets(100.0, 98.0, threshold=0.01)).passed

    def test_two_sided_round_trips(self):
        from repro.bench import invariant

        metric = invariant(5.0, "B", threshold=0.01)
        assert metric.two_sided
        assert Metric.from_dict(metric.to_dict()) == metric
        # Plain metrics stay two_sided-free on disk and default to False.
        assert "two_sided" not in Metric(1.0).to_dict()
        assert not Metric.from_dict({"value": 1.0}).two_sided

    def test_informational_metric_never_fails(self):
        comparison = compare_results(
            *one_metric_sets(1.0, 100.0, regression_threshold=None)
        )
        assert comparison.passed
        assert comparison.deltas[0].status == STATUS_INFO

    def test_missing_metric_fails_the_gate(self):
        baseline = {
            "bench": make_result("bench", kept=Metric(1.0), dropped=Metric(2.0))
        }
        current = {"bench": make_result("bench", kept=Metric(1.0))}
        comparison = compare_results(baseline, current)
        assert not comparison.passed
        [delta] = comparison.missing
        assert delta.metric == "dropped"
        assert delta.status == STATUS_MISSING

    def test_new_metric_and_new_benchmark_pass(self):
        baseline = {"bench": make_result("bench", m=Metric(1.0))}
        current = {
            "bench": make_result("bench", m=Metric(1.0), extra=Metric(9.0)),
            "novel": make_result("novel", m=Metric(1.0)),
        }
        comparison = compare_results(baseline, current)
        assert comparison.passed
        statuses = {(d.benchmark, d.metric): d.status for d in comparison.deltas}
        assert statuses[("bench", "extra")] == STATUS_NEW
        assert statuses[("novel", "m")] == STATUS_NEW

    def test_baseline_only_benchmark_is_skipped(self):
        """Partial runs (--tag filters) do not fail baselines they skipped."""
        baseline = {
            "bench": make_result("bench", m=Metric(1.0)),
            "skipped": make_result("skipped", m=Metric(1.0)),
        }
        current = {"bench": make_result("bench", m=Metric(1.0))}
        assert compare_results(baseline, current).passed

    def test_threshold_override(self):
        baseline, current = one_metric_sets(100.0, 110.0)
        assert compare_results(baseline, current).passed
        comparison = compare_results(baseline, current, threshold_override=0.05)
        assert not comparison.passed
        assert comparison.deltas[0].threshold == 0.05

    def test_exact_gate_with_zero_threshold(self):
        comparison = compare_results(
            *one_metric_sets(50.0, 51.0, regression_threshold=0.0)
        )
        assert comparison.deltas[0].status == STATUS_REGRESSED
        comparison = compare_results(
            *one_metric_sets(50.0, 50.0, regression_threshold=0.0)
        )
        assert comparison.deltas[0].status == STATUS_OK

    def test_comparison_report_shapes(self):
        baseline, current = one_metric_sets(100.0, 130.0)
        comparison = compare_results(baseline, current)
        assert comparison.counts() == {STATUS_REGRESSED: 1}
        document = comparison.to_dict()
        assert document["passed"] is False
        assert document["deltas"][0]["status"] == STATUS_REGRESSED
        [row] = comparison.as_rows()
        assert row[0] == "bench" and row[-1] == STATUS_REGRESSED
        assert "bench/m" in comparison.deltas[0].describe()
