"""Unified runtime: event model, composed scenarios, incremental == full.

The load-bearing property: every scenario run with ``incremental=True``
produces a canonical report **byte-identical** to the retained full-replan
reference (``incremental=False``), including per-outcome plan fingerprints —
incremental replanning may only change planner latency, never plan contents.
A seeded corpus of (workload event × cluster event) orderings, including
same-iteration tie-breaks, pins this across the composition space.
"""

import json
import random

import pytest

from repro.cluster.device import A800_SPEC
from repro.dynamic import DynamicWorkloadSchedule
from repro.elastic import ClusterEvent, EventTimeline, island_outage_timeline
from repro.elastic.events import DEVICE_FAILURE, NODE_JOIN, STRAGGLER_ONSET
from repro.obs import get_metrics
from repro.unified import (
    PHASE_CHANGE,
    TASK_ARRIVAL,
    TASK_DEPARTURE,
    UnifiedEventError,
    UnifiedRunError,
    UnifiedRunner,
    UnifiedScenario,
    UnifiedTimeline,
    WorkloadEvent,
    apply_workload_events,
    arrival_during_outage_timeline,
    flash_crowd_on_degraded_timeline,
    job_churn_timeline,
)
from tests.conftest import make_chain_task


def make_pool():
    """Five small tasks; shared-scope param keys keep churn twins isomorphic."""
    tasks = [
        make_chain_task("audio_task", {"audio": 1, "lm": 1}, batch=8,
                        shared_prefix="zoo.audio"),
        make_chain_task("vision_task", {"vision": 1, "lm": 1}, batch=4,
                        shared_prefix="zoo.vision"),
        make_chain_task("text_task", {"text": 1, "lm": 1}, batch=8,
                        shared_prefix="zoo.text"),
        make_chain_task("depth_task", {"depth": 1, "lm": 1}, batch=4,
                        shared_prefix="zoo.depth"),
        make_chain_task("vision_task_v2", {"vision": 1, "lm": 1}, batch=4,
                        shared_prefix="zoo.vision"),
    ]
    tasks[-1].weight = 2.0  # resubmission twin: fingerprint miss, same structure
    return {task.name: task for task in tasks}


INITIAL = ("audio_task", "vision_task", "text_task")


def scenario_with(timeline, iterations=60, initial=INITIAL, nodes=2, per_node=4):
    return UnifiedScenario(
        num_nodes=nodes,
        devices_per_node=per_node,
        device_spec=A800_SPEC,
        timeline=timeline,
        total_iterations=iterations,
        task_pool=make_pool(),
        initial_tasks=initial,
        name="test",
    )


def workload(kind, at, names):
    return WorkloadEvent(kind, at_iteration=at, task_names=tuple(names))


def canonical(result) -> str:
    return json.dumps(result.to_document(), sort_keys=True)


# ------------------------------------------------------------- event model
class TestEventModel:
    def test_rejects_unknown_kind_and_bad_fields(self):
        with pytest.raises(UnifiedEventError):
            WorkloadEvent("task_restart", at_iteration=1, task_names=("a",))
        with pytest.raises(UnifiedEventError):
            workload(TASK_ARRIVAL, -1, ["a"])
        with pytest.raises(UnifiedEventError):
            workload(TASK_ARRIVAL, 1, [])
        with pytest.raises(UnifiedEventError):
            workload(TASK_ARRIVAL, 1, ["a", "a"])

    def test_groups_are_ordered_and_merged_per_iteration(self):
        timeline = UnifiedTimeline()
        timeline.add_workload(workload(TASK_ARRIVAL, 30, ["depth_task"]))
        timeline.add_cluster(
            ClusterEvent(DEVICE_FAILURE, at_iteration=30, node=1, device=0)
        )
        timeline.add_cluster(
            ClusterEvent(STRAGGLER_ONSET, at_iteration=10, node=0, severity=0.5)
        )
        groups = timeline.grouped_by_iteration()
        assert [g.at_iteration for g in groups] == [10, 30]
        assert groups[1].num_events == 2
        assert groups[1].cluster_events[0].kind == DEVICE_FAILURE
        assert groups[1].workload_events[0].kind == TASK_ARRIVAL

    def test_same_iteration_workload_events_keep_insertion_order(self):
        timeline = UnifiedTimeline()
        timeline.add_workload(workload(TASK_DEPARTURE, 20, ["text_task"]))
        timeline.add_workload(workload(TASK_ARRIVAL, 20, ["depth_task"]))
        (group,) = timeline.grouped_by_iteration()
        assert [e.kind for e in group.workload_events] == [
            TASK_DEPARTURE,
            TASK_ARRIVAL,
        ]

    def test_timeline_extend_and_len(self):
        a = UnifiedTimeline(workload_events=[workload(TASK_ARRIVAL, 5, ["x"])])
        b = UnifiedTimeline(
            cluster_events=EventTimeline(
                [ClusterEvent(NODE_JOIN, at_iteration=3,
                              num_devices=4, spec=A800_SPEC)]
            )
        )
        assert len(a.extend(b)) == 2
        assert a.last_iteration == 5

    def test_apply_workload_events_semantics(self):
        pool = make_pool()
        active = list(INITIAL)
        active = apply_workload_events(
            active, [workload(TASK_ARRIVAL, 1, ["depth_task"])], pool
        )
        assert active == [*INITIAL, "depth_task"]
        active = apply_workload_events(
            active, [workload(TASK_DEPARTURE, 2, ["vision_task"])], pool
        )
        assert active == ["audio_task", "text_task", "depth_task"]
        active = apply_workload_events(
            active, [workload(PHASE_CHANGE, 3, ["text_task", "audio_task"])], pool
        )
        assert active == ["text_task", "audio_task"]

    @pytest.mark.parametrize(
        "events",
        [
            [workload(TASK_ARRIVAL, 1, ["audio_task"])],  # already active
            [workload(TASK_ARRIVAL, 1, ["nope"])],  # unknown
            [workload(TASK_DEPARTURE, 1, ["depth_task"])],  # not active
            [workload(PHASE_CHANGE, 1, ["nope"])],  # unknown
            [  # empties the active set
                workload(TASK_DEPARTURE, 1, ["audio_task"]),
                workload(TASK_DEPARTURE, 1, ["vision_task"]),
                workload(TASK_DEPARTURE, 1, ["text_task"]),
            ],
        ],
    )
    def test_apply_workload_events_rejects_invalid_streams(self, events):
        with pytest.raises(UnifiedRunError):
            apply_workload_events(list(INITIAL), events, make_pool())


# ------------------------------------------------------------- scenarios
class TestScenarioValidation:
    def test_rejects_events_beyond_total_iterations(self):
        timeline = UnifiedTimeline(
            workload_events=[workload(TASK_ARRIVAL, 60, ["depth_task"])]
        )
        with pytest.raises(UnifiedRunError):
            scenario_with(timeline, iterations=60)

    def test_rejects_invalid_stream_eagerly(self):
        timeline = UnifiedTimeline(
            workload_events=[workload(TASK_DEPARTURE, 10, ["depth_task"])]
        )
        with pytest.raises(UnifiedRunError):
            scenario_with(timeline)

    def test_rejects_unknown_initial_tasks_and_empty_pool(self):
        with pytest.raises(UnifiedRunError):
            scenario_with(UnifiedTimeline(), initial=("ghost",))

    def test_generator_determinism(self):
        kwargs = dict(
            arriving_tasks=["depth_task"], num_new_nodes=1, devices_per_node=4,
            spec=A800_SPEC, num_nodes=2, total_iterations=60, seed=3,
        )
        a = flash_crowd_on_degraded_timeline(**kwargs)
        b = flash_crowd_on_degraded_timeline(**kwargs)
        assert a.to_document() == b.to_document()

    def test_job_churn_requires_active_old_task(self):
        with pytest.raises(UnifiedEventError):
            job_churn_timeline(INITIAL, [("depth_task", "x")], [10])

    def test_from_dynamic_bridge(self):
        pool = make_pool()
        schedule = DynamicWorkloadSchedule.from_tasks(
            list(pool.values()),
            phases=[(INITIAL, 20), (INITIAL[:2], 20), (INITIAL, 20)],
        )
        scenario = UnifiedScenario.from_dynamic(
            schedule, num_nodes=2, devices_per_node=4, device_spec=A800_SPEC
        )
        assert scenario.initial_tasks == INITIAL
        assert scenario.total_iterations == 60
        events = scenario.timeline.workload_events
        assert [e.at_iteration for e in events] == [20, 40]
        assert all(e.kind == PHASE_CHANGE for e in events)


# --------------------------------------------- incremental == full corpus
def corpus():
    """Composed scenarios covering the (workload × cluster) ordering space."""
    scenarios = {
        "arrival-during-outage": scenario_with(
            arrival_during_outage_timeline(
                ["depth_task"], outage_node=1, devices_per_node=4,
                at_iteration=20, recovery_at=40,
            )
        ),
        "flash-crowd-degraded": scenario_with(
            flash_crowd_on_degraded_timeline(
                ["depth_task"], num_new_nodes=1, devices_per_node=4,
                spec=A800_SPEC, num_nodes=2, total_iterations=60, seed=1,
            )
        ),
        "iso-churn": scenario_with(
            job_churn_timeline(
                INITIAL, [("vision_task", "vision_task_v2")], [30]
            )
        ),
        "departure-with-straggler-tie": scenario_with(
            UnifiedTimeline(
                cluster_events=EventTimeline([
                    ClusterEvent(STRAGGLER_ONSET, at_iteration=25, node=0,
                                 severity=0.5),
                ]),
                workload_events=[workload(TASK_DEPARTURE, 25, ["text_task"])],
            )
        ),
        "arrival-then-departure-same-group": scenario_with(
            UnifiedTimeline(workload_events=[
                workload(TASK_ARRIVAL, 15, ["depth_task"]),
                workload(TASK_DEPARTURE, 15, ["audio_task"]),
            ])
        ),
    }
    # Seeded random compositions: every workload kind × cluster kind pairing,
    # with and without same-iteration ties.
    for seed in range(3):
        rng = random.Random(seed)
        timeline = UnifiedTimeline()
        iteration = rng.randrange(5, 20)
        timeline.add_cluster(
            ClusterEvent(DEVICE_FAILURE, at_iteration=iteration,
                         node=rng.randrange(2), device=rng.randrange(4))
        )
        workload_at = iteration if rng.random() < 0.5 else iteration + 10
        kind = rng.choice([TASK_ARRIVAL, TASK_DEPARTURE, PHASE_CHANGE])
        names = {
            TASK_ARRIVAL: ["depth_task"],
            TASK_DEPARTURE: ["vision_task"],
            PHASE_CHANGE: ["text_task", "audio_task", "vision_task_v2"],
        }[kind]
        timeline.add_workload(workload(kind, workload_at, names))
        scenarios[f"seeded-{seed}"] = scenario_with(timeline)
    return scenarios


@pytest.mark.parametrize("name", sorted(corpus()))
def test_incremental_equals_full_replan(name):
    scenario = corpus()[name]
    incremental = UnifiedRunner(scenario, incremental=True).run()
    full = UnifiedRunner(scenario, incremental=False).run()
    assert canonical(incremental) == canonical(full)
    for a, b in zip(incremental.outcomes, full.outcomes):
        assert a.plan_fingerprint == b.plan_fingerprint
    assert full.levels_reused == 0


def test_run_is_deterministic():
    scenario = corpus()["arrival-during-outage"]
    assert canonical(UnifiedRunner(scenario).run()) == canonical(
        UnifiedRunner(scenario).run()
    )


# ------------------------------------------------------------ runner logic
class TestRunnerBehaviour:
    def test_task_set_change_forces_replan(self):
        timeline = UnifiedTimeline(
            workload_events=[workload(TASK_ARRIVAL, 30, ["depth_task"])]
        )
        result = UnifiedRunner(scenario_with(timeline)).run()
        (outcome,) = result.outcomes
        assert outcome.task_set_changed and outcome.forced and outcome.replanned
        assert outcome.active_tasks == (*INITIAL, "depth_task")
        assert result.task_set_changes == 1

    def test_isomorphic_churn_reuses_whole_plan_structure(self):
        timeline = job_churn_timeline(
            INITIAL, [("vision_task", "vision_task_v2")], [30]
        )
        result = UnifiedRunner(scenario_with(timeline), incremental=True).run()
        (outcome,) = result.outcomes
        assert not outcome.replan.cache_hit  # weight changed the fingerprint
        assert outcome.replan.levels_reused > 0
        assert result.levels_reused == outcome.replan.levels_reused

    def test_substrate_applies_before_workload_in_tie(self):
        """The arrival composed with an outage plans on the degraded cluster."""
        timeline = arrival_during_outage_timeline(
            ["depth_task"], outage_node=1, devices_per_node=4, at_iteration=20
        )
        result = UnifiedRunner(scenario_with(timeline)).run()
        outcome = result.outcomes[0]
        assert outcome.num_devices == 4  # 8 devices minus the dark island
        assert outcome.task_set_changed

    def test_phase_return_hits_plan_cache(self):
        timeline = UnifiedTimeline(workload_events=[
            workload(PHASE_CHANGE, 20, ("audio_task", "vision_task")),
            workload(PHASE_CHANGE, 40, INITIAL),
        ])
        result = UnifiedRunner(scenario_with(timeline)).run()
        assert result.replan_count == 2
        assert result.cache_hits == 1  # the return to the initial task set

    def test_metrics_flow_into_shared_elastic_schema(self):
        metrics = get_metrics()
        before = metrics.snapshot()
        timeline = UnifiedTimeline(
            workload_events=[workload(TASK_ARRIVAL, 30, ["depth_task"])]
        )
        UnifiedRunner(scenario_with(timeline)).run()
        delta = metrics.snapshot().diff(before)
        assert any(key.startswith("elastic.replans") for key in delta.counters)
        assert any(
            key.startswith("elastic.replan_seconds") for key in delta.histograms
        )

    def test_mode_attribute_reflects_planner_path(self):
        scenario = scenario_with(UnifiedTimeline(
            workload_events=[workload(TASK_ARRIVAL, 30, ["depth_task"])]
        ))
        assert UnifiedRunner(scenario, incremental=True).run().mode == "incremental"
        assert UnifiedRunner(scenario, incremental=False).run().mode == "full"
