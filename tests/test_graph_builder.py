"""Unit tests for the multi-task graph builder."""

import pytest

from repro.graph.builder import MultiTaskGraphBuilder, build_unified_graph
from repro.graph.task import TaskError
from tests.conftest import make_chain_task


class TestMultiTaskGraphBuilder:
    def test_merges_all_tasks(self, tiny_tasks):
        graph = build_unified_graph(tiny_tasks)
        expected_ops = sum(task.num_operators for task in tiny_tasks)
        assert graph.num_operators == expected_ops
        assert set(graph.tasks()) == {task.name for task in tiny_tasks}

    def test_task_lookup(self, tiny_tasks):
        builder = MultiTaskGraphBuilder(tiny_tasks)
        assert builder.task("audio_task") is tiny_tasks[0]
        assert builder.task_names == ["audio_task", "vision_task"]
        with pytest.raises(TaskError):
            builder.task("missing")

    def test_duplicate_task_rejected(self, tiny_tasks):
        builder = MultiTaskGraphBuilder(tiny_tasks)
        with pytest.raises(TaskError):
            builder.add_task(tiny_tasks[0])

    def test_empty_builder_rejected(self):
        with pytest.raises(TaskError):
            MultiTaskGraphBuilder().build()

    def test_shared_parameter_keys(self, tiny_tasks):
        builder = MultiTaskGraphBuilder(tiny_tasks)
        shared = builder.shared_parameter_keys()
        # Both toy tasks share the 'shared.lm.*' parameters.
        lm_keys = [key for key in shared if key.startswith("shared.lm")]
        assert lm_keys
        for key in lm_keys:
            assert set(shared[key]) == {"audio_task", "vision_task"}
        # Modality-specific keys belong to a single task.
        audio_keys = [key for key in shared if key.startswith("shared.audio")]
        assert all(shared[key] == ["audio_task"] for key in audio_keys)

    def test_no_cross_task_edges(self, tiny_tasks):
        graph = build_unified_graph(tiny_tasks)
        for flow in graph.flows:
            assert graph.operator(flow.src).task == graph.operator(flow.dst).task

    def test_unique_operator_names_required(self):
        a = make_chain_task("same", {"enc": 1})
        b = make_chain_task("same", {"enc": 1})
        with pytest.raises(TaskError):
            build_unified_graph([a, b])
