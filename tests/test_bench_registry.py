"""Benchmark registry: enumeration, selection and on-disk discovery."""

from pathlib import Path

import pytest

from repro.bench import (
    REGISTRY,
    BenchmarkRegistry,
    Metric,
    benchmark_modules,
    discover,
    run_benchmark,
    run_benchmarks,
)
from repro.bench.runner import BenchContext, WorkloadCache
from repro.experiments.workloads import clip_workload

SUITE_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def discovered():
    discover(SUITE_DIR)
    return REGISTRY


class TestDiscovery:
    def test_every_bench_module_registers_a_benchmark(self, discovered):
        """Registry enumeration matches the bench_* modules on disk."""
        modules_on_disk = {path.stem for path in benchmark_modules(SUITE_DIR)}
        assert modules_on_disk, "no benchmark modules found on disk"
        registered_modules = {spec.module for spec in discovered.specs()}
        missing = modules_on_disk - registered_modules
        assert not missing, f"bench modules without a registered benchmark: {missing}"

    def test_registered_benchmarks_come_from_disk_modules(self, discovered):
        modules_on_disk = {path.stem for path in benchmark_modules(SUITE_DIR)}
        for spec in discovered.specs():
            assert spec.module in modules_on_disk

    def test_discover_is_idempotent(self, discovered):
        before = discovered.names()
        discover(SUITE_DIR)
        assert discovered.names() == before

    def test_specs_are_classified(self, discovered):
        for spec in discovered.specs():
            assert spec.name
            assert spec.stage
            assert spec.tags, f"{spec.name} has no tags"
            assert spec.description

    def test_smoke_subset_is_substantial(self, discovered):
        smoke = discovered.select(tags=["smoke"])
        assert len(smoke) >= 10

    def test_discover_missing_directory(self):
        with pytest.raises(FileNotFoundError):
            discover(SUITE_DIR / "does-not-exist")


class TestRegistry:
    def test_register_and_select(self):
        registry = BenchmarkRegistry()

        @registry.register("a", tags=("x", "smoke"), stage="planning")
        def bench_a(ctx):
            return {}

        @registry.register("b", tags=("y",), figure="fig99")
        def bench_b(ctx):
            return {}

        assert registry.names() == ["a", "b"]
        assert "a" in registry and "nope" not in registry
        assert [s.name for s in registry.select(tags=["x"])] == ["a"]
        assert [s.name for s in registry.select(names=["b"])] == ["b"]
        assert registry.select(tags=["x", "y"]) == []
        assert registry.get("b").figure == "fig99"
        assert sorted(registry.tags()) == ["smoke", "x", "y"]

    def test_unknown_name_raises(self):
        registry = BenchmarkRegistry()
        with pytest.raises(KeyError):
            registry.get("ghost")
        with pytest.raises(KeyError):
            registry.select(names=["ghost"])

    def test_same_module_reregistration_replaces(self):
        registry = BenchmarkRegistry()

        @registry.register("a")
        def bench_one(ctx):
            return {}

        @registry.register("a")
        def bench_two(ctx):
            return {}

        assert len(registry) == 1
        assert registry.get("a").func is bench_two

    def test_cross_module_collision_raises(self):
        registry = BenchmarkRegistry()

        @registry.register("a")
        def bench_one(ctx):
            return {}

        other = lambda ctx: {}  # noqa: E731 - stand-in for a foreign module
        other.__module__ = "somewhere_else"
        with pytest.raises(ValueError):
            registry.register("a")(other)


class TestRunner:
    def test_run_benchmark_wraps_metrics(self):
        registry = BenchmarkRegistry()
        workload = clip_workload(4, 8)

        @registry.register(
            "wrapped", figure="fig00", stage="planning", tags=("t",)
        )
        def bench(ctx):
            tasks = ctx.tasks(workload)
            return {"num_tasks": Metric(float(len(tasks)), "tasks")}

        result = run_benchmark(registry.get("wrapped"), WorkloadCache())
        assert result.name == "wrapped"
        assert result.figure == "fig00"
        assert result.stage == "planning"
        assert result.value("num_tasks") == 4.0
        assert result.workloads == (workload.name,)
        assert len(result.workload_fingerprint) == 64  # sha256 hex
        assert result.metadata["duration_seconds"] >= 0

    def test_run_benchmark_rejects_non_metrics(self):
        registry = BenchmarkRegistry()

        @registry.register("broken")
        def bench(ctx):
            return {"oops": 1.0}

        with pytest.raises(TypeError):
            run_benchmark(registry.get("broken"), WorkloadCache())

    def test_run_benchmarks_parallel_preserves_order(self):
        registry = BenchmarkRegistry()
        for index in range(4):
            @registry.register(f"bench{index}")
            def bench(ctx, index=index):
                return {"index": Metric(float(index))}

        results = run_benchmarks(registry.specs(), jobs=4)
        assert [r.value("index") for r in results] == [0.0, 1.0, 2.0, 3.0]
        shared = {r.metadata["created_at"] for r in results}
        assert len(shared) == 1

    def test_workload_cache_builds_once(self):
        cache = WorkloadCache()
        workload = clip_workload(4, 8)
        assert cache.tasks(workload) is cache.tasks(workload)
        assert cache.cluster(workload) is cache.cluster(workload)
        assert cache.fingerprint(workload) == cache.fingerprint(workload)
        assert cache.cached_names() == [workload.name]
        built = []
        assert cache.get_or_build("k", lambda: built.append(1) or "v") == "v"
        assert cache.get_or_build("k", lambda: built.append(1) or "v") == "v"
        assert built == [1]

    def test_context_combines_fingerprints(self):
        cache = WorkloadCache()
        ctx = BenchContext(cache)
        assert ctx.fingerprint() == ""
        first, second = clip_workload(4, 8), clip_workload(7, 16)
        ctx.tasks(first)
        single = ctx.fingerprint()
        assert single == cache.fingerprint(first)
        ctx.cluster(second)
        combined = ctx.fingerprint()
        assert combined != single and len(combined) == 64
        assert ctx.used_workloads == sorted([first.name, second.name])
