"""Unit tests for the analytic FLOP / parameter / activation accounting."""

import pytest

from repro.costmodel.flops import (
    LayerConfig,
    contrastive_loss_flops,
    embedding_flops,
    embedding_params,
    make_contrastive_loss_op,
    make_projection_op,
    make_transformer_layer_op,
    projection_flops,
    projection_params,
    transformer_layer_activation_bytes,
    transformer_layer_flops,
    transformer_layer_params,
)
from repro.graph.ops import TensorSpec


class TestLayerConfig:
    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            LayerConfig(hidden_size=0)
        with pytest.raises(ValueError):
            LayerConfig(hidden_size=8, ffn_mult=0)
        with pytest.raises(ValueError):
            LayerConfig(hidden_size=8, num_heads=0)


class TestTransformerLayer:
    def test_params_dominated_by_12_h_squared(self):
        config = LayerConfig(hidden_size=1024)
        params = transformer_layer_params(config)
        assert params == pytest.approx(12 * 1024**2, rel=0.01)

    def test_params_scale_quadratically_with_hidden(self):
        small = transformer_layer_params(LayerConfig(hidden_size=512))
        large = transformer_layer_params(LayerConfig(hidden_size=1024))
        assert large / small == pytest.approx(4.0, rel=0.02)

    def test_flops_scale_linearly_with_batch(self):
        config = LayerConfig(hidden_size=256)
        f1 = transformer_layer_flops(TensorSpec(4, 64, 256), config)
        f2 = transformer_layer_flops(TensorSpec(8, 64, 256), config)
        assert f2 / f1 == pytest.approx(2.0)

    def test_flops_superlinear_in_sequence_length(self):
        config = LayerConfig(hidden_size=256)
        f1 = transformer_layer_flops(TensorSpec(4, 64, 256), config)
        f2 = transformer_layer_flops(TensorSpec(4, 128, 256), config)
        # Attention's quadratic term makes doubling the sequence more than 2x.
        assert f2 / f1 > 2.0

    def test_flops_reject_mismatched_hidden(self):
        with pytest.raises(ValueError):
            transformer_layer_flops(TensorSpec(4, 64, 128), LayerConfig(hidden_size=256))

    def test_activation_bytes_equal_tensor_bytes(self):
        spec = TensorSpec(2, 16, 64)
        assert transformer_layer_activation_bytes(spec) == spec.bytes

    def test_flops_match_manual_small_case(self):
        spec = TensorSpec(1, 2, 4)
        config = LayerConfig(hidden_size=4, ffn_mult=4)
        tokens = 2
        expected = (
            2 * tokens * 4 * 12          # qkv proj
            + 2 * 1 * 2 * 2 * 4 * 2      # scores + values
            + 2 * tokens * 4 * 4         # out proj
            + 2 * 2 * tokens * 4 * 16    # mlp
        )
        assert transformer_layer_flops(spec, config) == pytest.approx(expected)


class TestAuxiliaryOps:
    def test_projection(self):
        spec = TensorSpec(2, 1, 8)
        assert projection_flops(spec, 16) == pytest.approx(2 * 2 * 1 * 8 * 16)
        assert projection_params(8, 16) == 8 * 16 + 16

    def test_embedding(self):
        spec = TensorSpec(2, 4, 8)
        assert embedding_params(100, 8) == 800
        assert embedding_flops(spec, 100) == pytest.approx(2 * 2 * 4 * 8)

    def test_contrastive_loss_quadratic_in_batch(self):
        f1 = contrastive_loss_flops(8, 64)
        f2 = contrastive_loss_flops(16, 64)
        assert f2 / f1 == pytest.approx(4.0, rel=0.05)


class TestOperatorFactories:
    def test_transformer_layer_op(self):
        spec = TensorSpec(4, 8, 32)
        op = make_transformer_layer_op(
            "t.layer0", "text_layer", "t", "text", spec, LayerConfig(32), "k.0"
        )
        assert op.flops == transformer_layer_flops(spec, LayerConfig(32))
        assert op.param_bytes == transformer_layer_params(LayerConfig(32)) * 2
        assert op.param_key == "k.0"
        assert op.metadata["hidden_size"] == 32

    def test_projection_op_changes_activation_width(self):
        spec = TensorSpec(4, 8, 32)
        op = make_projection_op("t.proj", "proj", "t", "text", spec, 64, None)
        assert op.activation_bytes == 4 * 8 * 64 * 2
        assert op.param_key is None

    def test_contrastive_op_has_no_parameters(self):
        op = make_contrastive_loss_op("t.loss", "t", batch=8, embed_dim=32)
        assert op.param_bytes == 0.0
        assert op.op_type == "contrastive_loss"
        assert op.modality == "fusion"
