"""Heterogeneous clusters: mixed device specs and irregular islands, end to end.

The paper's testbed is homogeneous; elastic scenarios (stragglers, mixed-spec
expansion, partial node failures) are not.  These tests push mixed
``DeviceSpec`` clusters and irregular island sizes through every layer that
consumes a topology — the topology itself, the timing model, the allocator,
the placement pass and the runtime simulator — and pin the conservative
pacing/capacity semantics the planner applies to them.
"""

import pytest

from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC, DeviceSpec
from repro.cluster.topology import (
    ClusterTopology,
    TopologyError,
    make_cluster,
    make_heterogeneous_cluster,
)
from repro.core.planner import ExecutionPlanner
from repro.costmodel.timing import ExecutionTimeModel
from repro.runtime.engine import RuntimeEngine
from tests.conftest import make_chain_task, make_layer_op

SMALL_MEMORY = DeviceSpec(
    name="small-mem",
    peak_flops=A800_SPEC.peak_flops,
    memory_bytes=8 * 1024**3,
    achievable_fraction=A800_SPEC.achievable_fraction,
)


@pytest.fixture
def mixed_cluster():
    """Two A800 islands of 4 plus one slower TestGPU island of 4."""
    return make_heterogeneous_cluster(
        [A800_SPEC, A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
    )


@pytest.fixture
def tasks():
    return [
        make_chain_task("audio_task", {"audio": 2, "lm": 2}, batch=8),
        make_chain_task("vision_task", {"vision": 2, "lm": 2}, batch=4),
    ]


class TestHeterogeneousTopology:
    def test_per_device_specs(self, mixed_cluster):
        assert not mixed_cluster.is_homogeneous
        assert mixed_cluster.spec_of(0) == A800_SPEC
        assert mixed_cluster.spec_of(8) == TEST_GPU_SPEC
        assert mixed_cluster.device(11).spec == TEST_GPU_SPEC

    def test_totals_sum_per_device(self, mixed_cluster):
        expected_flops = 8 * A800_SPEC.peak_flops + 4 * TEST_GPU_SPEC.peak_flops
        assert mixed_cluster.total_peak_flops == pytest.approx(expected_flops)
        expected_memory = (
            8 * A800_SPEC.memory_bytes + 4 * TEST_GPU_SPEC.memory_bytes
        )
        assert mixed_cluster.total_memory_bytes == pytest.approx(expected_memory)

    def test_min_max_helpers(self, mixed_cluster):
        assert mixed_cluster.min_achievable_flops == TEST_GPU_SPEC.achievable_flops
        assert mixed_cluster.min_memory_bytes == TEST_GPU_SPEC.memory_bytes
        assert mixed_cluster.max_peak_flops == A800_SPEC.peak_flops

    def test_uniform_cluster_helpers_match_spec(self):
        cluster = make_cluster(8)
        assert cluster.is_homogeneous
        assert cluster.min_achievable_flops == A800_SPEC.achievable_flops
        assert cluster.min_memory_bytes == A800_SPEC.memory_bytes
        assert cluster.max_peak_flops == A800_SPEC.peak_flops

    def test_irregular_island_sizes(self):
        cluster = ClusterTopology(
            num_nodes=2, devices_per_node=4, island_sizes=(3, 4)
        )
        assert cluster.num_devices == 7
        assert cluster.islands() == [[0, 1, 2], [3, 4, 5, 6]]
        assert cluster.island_of(3) == 1
        with pytest.raises(TopologyError):
            cluster.device(7)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TopologyError):
            ClusterTopology(num_nodes=2, devices_per_node=4, island_sizes=(4,))
        with pytest.raises(TopologyError):
            ClusterTopology(
                num_nodes=2, devices_per_node=4, node_specs=(A800_SPEC,)
            )
        with pytest.raises(TopologyError):
            ClusterTopology(num_nodes=1, devices_per_node=4, island_sizes=(0,))

    def test_signature_distinguishes_specs_sizes_and_fractions(self):
        uniform = make_cluster(8, devices_per_node=4)
        assert uniform.signature() == make_cluster(8, devices_per_node=4).signature()
        mixed = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        irregular = ClusterTopology(
            num_nodes=2, devices_per_node=4, island_sizes=(3, 4)
        )
        degraded = make_heterogeneous_cluster(
            [A800_SPEC, A800_SPEC.degraded(0.5)], devices_per_node=4
        )
        signatures = {
            uniform.signature(),
            mixed.signature(),
            irregular.signature(),
            degraded.signature(),
        }
        assert len(signatures) == 4

    def test_empty_heterogeneous_cluster_rejected(self):
        with pytest.raises(TopologyError):
            make_heterogeneous_cluster([])


class TestHeterogeneousTiming:
    def test_slowest_device_paces_the_model(self, tasks):
        fast = make_cluster(8, devices_per_node=4)
        mixed = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        op = make_layer_op("probe")
        fast_time = ExecutionTimeModel(fast).operator_time(op, 4)
        mixed_time = ExecutionTimeModel(mixed).operator_time(op, 4)
        assert mixed_time > fast_time

    def test_degraded_spec_slows_the_same_silicon(self):
        healthy = make_cluster(8, devices_per_node=4)
        straggling = make_heterogeneous_cluster(
            [A800_SPEC, A800_SPEC.degraded(0.5)], devices_per_node=4
        )
        op = make_layer_op("probe")
        assert ExecutionTimeModel(straggling).operator_time(op, 4) > (
            ExecutionTimeModel(healthy).operator_time(op, 4)
        )


class TestHeterogeneousPlanning:
    def test_planner_produces_valid_plans_on_mixed_specs(self, mixed_cluster, tasks):
        plan = ExecutionPlanner(mixed_cluster).plan(tasks)
        plan.validate()
        assert plan.schedule.num_waves >= 1
        used = {
            device
            for wave in plan.waves
            for entry in wave.entries
            for device in entry.devices
        }
        assert used <= set(range(mixed_cluster.num_devices))

    def test_planner_handles_irregular_islands(self, tasks):
        cluster = ClusterTopology(
            num_nodes=2, devices_per_node=8, island_sizes=(7, 8)
        )
        plan = ExecutionPlanner(cluster).plan(tasks)
        plan.validate()
        result = RuntimeEngine(plan).run_iteration()
        assert result.iteration_time > 0

    def test_placement_respects_per_device_memory(self, tasks):
        """A small-memory island forces per-device fit checks: the placement
        must not report capacity where the small devices have none."""
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, SMALL_MEMORY], devices_per_node=4
        )
        plan = ExecutionPlanner(cluster).plan(tasks)
        for device_id, used in plan.placement.device_memory_bytes.items():
            capacity = cluster.spec_of(device_id).memory_bytes
            # Unless an OOM event was recorded, placements fit their device.
            if not plan.placement.oom_events:
                assert used <= capacity

    def test_simulator_runs_heterogeneous_plans(self, mixed_cluster, tasks):
        plan = ExecutionPlanner(mixed_cluster).plan(tasks)
        result = RuntimeEngine(plan).run_iteration()
        assert result.iteration_time > 0
        trace = result.trace
        assert trace is not None
        # Utilization normalised by the fastest device's peak stays in [0, 1].
        utilization = trace.device_utilization()
        assert set(utilization) == set(range(mixed_cluster.num_devices))
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in utilization.values())

    def test_mixed_cluster_pacing_orderings(self, tasks):
        """Slowest-device pacing (spec_aware=False) on a mixed cluster is
        slower than a uniform fast cluster, and the heterogeneity-aware
        planner recovers part of that gap (it may even beat the uniform
        cluster on these sync-dominated toy tasks by concentrating work on
        the fast islands — no ordering is asserted there)."""
        fast = make_cluster(8, devices_per_node=4)
        mixed = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        fast_result = RuntimeEngine(ExecutionPlanner(fast).plan(tasks)).run_iteration()
        legacy_result = RuntimeEngine(
            ExecutionPlanner(mixed, spec_aware=False).plan(tasks)
        ).run_iteration()
        aware_result = RuntimeEngine(
            ExecutionPlanner(mixed).plan(tasks)
        ).run_iteration()
        assert legacy_result.iteration_time > fast_result.iteration_time
        assert aware_result.iteration_time <= legacy_result.iteration_time
