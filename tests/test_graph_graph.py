"""Unit tests for the ComputationGraph DAG."""

import pytest

from repro.graph.graph import ComputationGraph, GraphError
from tests.conftest import make_layer_op


def chain_graph(names, task="t"):
    graph = ComputationGraph()
    for name in names:
        graph.add_operator(make_layer_op(name, task=task))
    for src, dst in zip(names, names[1:]):
        graph.add_flow(src, dst)
    return graph


class TestNodeManagement:
    def test_add_and_lookup(self):
        graph = ComputationGraph()
        op = graph.add_operator(make_layer_op("a"))
        assert graph.has_operator("a")
        assert graph.operator("a") is op
        assert "a" in graph
        assert len(graph) == 1

    def test_duplicate_name_rejected(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("a"))
        with pytest.raises(GraphError):
            graph.add_operator(make_layer_op("a"))

    def test_unknown_operator_lookup(self):
        graph = ComputationGraph()
        with pytest.raises(GraphError):
            graph.operator("missing")

    def test_add_operators_bulk(self):
        graph = ComputationGraph()
        graph.add_operators(make_layer_op(n) for n in ["a", "b", "c"])
        assert graph.num_operators == 3


class TestEdges:
    def test_default_volume_is_source_activation(self):
        graph = chain_graph(["a", "b"])
        flow = graph.flow("a", "b")
        assert flow.volume_bytes == graph.operator("a").activation_bytes

    def test_explicit_volume(self):
        graph = ComputationGraph()
        graph.add_operators([make_layer_op("a"), make_layer_op("b")])
        graph.add_flow("a", "b", volume_bytes=42.0)
        assert graph.flow("a", "b").volume_bytes == 42.0

    def test_duplicate_edge_rejected(self):
        graph = chain_graph(["a", "b"])
        with pytest.raises(GraphError):
            graph.add_flow("a", "b")

    def test_edge_to_unknown_operator_rejected(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("a"))
        with pytest.raises(GraphError):
            graph.add_flow("a", "missing")
        with pytest.raises(GraphError):
            graph.add_flow("missing", "a")

    def test_cycle_rejected_and_rolled_back(self):
        graph = chain_graph(["a", "b", "c"])
        with pytest.raises(GraphError):
            graph.add_flow("c", "a")
        # The rejected edge must not linger.
        assert graph.num_flows == 2
        assert graph.out_degree("c") == 0


class TestTraversal:
    def test_degrees_and_neighbors(self):
        graph = chain_graph(["a", "b", "c"])
        assert graph.in_degree("a") == 0
        assert graph.out_degree("a") == 1
        assert graph.successors("a") == ["b"]
        assert graph.predecessors("c") == ["b"]

    def test_sources_and_sinks(self):
        graph = chain_graph(["a", "b", "c"])
        assert graph.sources() == ["a"]
        assert graph.sinks() == ["c"]

    def test_topological_order_respects_edges(self):
        graph = ComputationGraph()
        for name in ["a", "b", "c", "d"]:
            graph.add_operator(make_layer_op(name))
        graph.add_flow("a", "c")
        graph.add_flow("b", "c")
        graph.add_flow("c", "d")
        order = graph.topological_order()
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_validate_passes_on_dag(self):
        chain_graph(["a", "b", "c"]).validate()


class TestAggregates:
    def test_tasks_and_subgraph(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("t1.a", task="t1"))
        graph.add_operator(make_layer_op("t1.b", task="t1"))
        graph.add_operator(make_layer_op("t2.a", task="t2"))
        graph.add_flow("t1.a", "t1.b")
        assert graph.tasks() == ["t1", "t2"]
        sub = graph.task_subgraph("t1")
        assert sub.num_operators == 2
        assert sub.num_flows == 1

    def test_total_flops(self):
        graph = chain_graph(["a", "b"])
        expected = sum(op.flops for op in graph)
        assert graph.total_flops() == pytest.approx(expected)

    def test_total_param_bytes_deduplicates_shared_keys(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("t1.a", task="t1", param_key="shared.0"))
        graph.add_operator(make_layer_op("t2.a", task="t2", param_key="shared.0"))
        graph.add_operator(make_layer_op("t1.b", task="t1"))
        single = graph.operator("t1.a").param_bytes
        own = graph.operator("t1.b").param_bytes
        assert graph.total_param_bytes() == pytest.approx(single + own)
        assert graph.total_param_bytes(deduplicate_shared=False) == pytest.approx(
            2 * single + own
        )
