"""Tests for the fingerprint-keyed LRU+TTL plan cache."""

import pytest

from repro.cluster.topology import make_cluster
from repro.core.planner import ExecutionPlanner
from repro.core.serialization import plan_to_json, validate_plan_document
from repro.service.cache import CacheError, PlanCache

import json


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def plan(tiny_tasks):
    return ExecutionPlanner(make_cluster(4, devices_per_node=4)).plan(tiny_tasks)


class TestBasicOperations:
    def test_get_miss_then_hit(self, plan):
        cache = PlanCache()
        assert cache.get(plan.fingerprint) is None
        cache.put(plan.fingerprint, plan)
        assert cache.get(plan.fingerprint) is plan
        assert plan.fingerprint in cache
        assert len(cache) == 1

    def test_payload_is_byte_identical_across_hits(self, plan):
        cache = PlanCache()
        cache.put(plan.fingerprint, plan)
        first = cache.get_payload(plan.fingerprint)
        second = cache.get_payload(plan.fingerprint)
        assert first.encode("utf-8") == second.encode("utf-8")
        assert first == plan_to_json(plan)
        validate_plan_document(json.loads(first))

    def test_invalidate_and_clear(self, plan):
        cache = PlanCache()
        cache.put(plan.fingerprint, plan)
        assert cache.invalidate(plan.fingerprint)
        assert not cache.invalidate(plan.fingerprint)
        cache.put(plan.fingerprint, plan)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(CacheError):
            PlanCache(capacity=0)
        with pytest.raises(CacheError):
            PlanCache(ttl_seconds=0.0)


class TestEviction:
    def test_lru_eviction_order(self, plan):
        cache = PlanCache(capacity=2)
        cache.put("a", plan)
        cache.put("b", plan)
        assert cache.get("a") is plan  # refresh "a": now "b" is LRU
        cache.put("c", plan)
        assert cache.get("b") is None
        assert cache.get("a") is plan
        assert cache.get("c") is plan
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self, plan):
        cache = PlanCache(capacity=2)
        cache.put("a", plan)
        cache.put("a", plan)
        cache.put("b", plan)
        assert len(cache) == 2
        assert cache.stats.evictions == 0


class TestTTL:
    def test_entries_expire(self, plan):
        clock = FakeClock()
        cache = PlanCache(ttl_seconds=10.0, clock=clock)
        cache.put("a", plan)
        clock.advance(9.0)
        assert cache.get("a") is plan
        clock.advance(2.0)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_purge_expired(self, plan):
        clock = FakeClock()
        cache = PlanCache(ttl_seconds=5.0, clock=clock)
        cache.put("a", plan)
        cache.put("b", plan)
        clock.advance(6.0)
        cache.put("c", plan)
        assert cache.purge_expired() == 2
        assert cache.fingerprints() == ["c"]

    def test_no_ttl_never_expires(self, plan):
        clock = FakeClock()
        cache = PlanCache(clock=clock)
        cache.put("a", plan)
        clock.advance(1e9)
        assert cache.get("a") is plan
        assert cache.purge_expired() == 0


class TestStats:
    def test_hit_rate(self, plan):
        cache = PlanCache()
        cache.put("a", plan)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.as_dict()["puts"] == 1


class TestPersistence:
    def test_save_and_load_payloads(self, plan, tmp_path):
        cache = PlanCache()
        cache.put(plan.fingerprint, plan)
        path = cache.save(tmp_path / "cache.json")
        payload = cache.get_payload(plan.fingerprint)

        restored = PlanCache()
        assert restored.load(path) == 1
        # Live plans are not reconstructed — get() reports a miss so callers
        # know they must plan — but payloads are served byte-identically.
        assert restored.get(plan.fingerprint) is None
        assert restored.stats.misses == 1
        assert restored.get_payload(plan.fingerprint) == payload
        assert restored.stats.hits == 1

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(CacheError):
            PlanCache().load(path)
        path.write_text('{"format_version": 99, "entries": {}}')
        with pytest.raises(CacheError):
            PlanCache().load(path)
