"""Tests for the fingerprint-keyed LRU+TTL plan cache.

Every test runs against both cache implementations — the flat
:class:`PlanCache` and the lock-striped :class:`StripedPlanCache` the serving
fleet shares across shards — proving the striped cache preserves LRU/TTL
semantics, stats accounting and byte-identical payload serving.
"""

import pytest

from repro.cluster.topology import make_cluster
from repro.core.planner import ExecutionPlanner
from repro.core.serialization import plan_to_json, validate_plan_document
from repro.service.cache import CacheError, PlanCache
from repro.service.fleet import StripedPlanCache

import json


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["flat", "striped"])
def make_cache(request):
    """Factory building either cache implementation with PlanCache kwargs."""
    if request.param == "flat":
        return PlanCache

    def striped(**kwargs):
        return StripedPlanCache(num_stripes=4, **kwargs)

    return striped


@pytest.fixture
def plan(tiny_tasks):
    return ExecutionPlanner(make_cluster(4, devices_per_node=4)).plan(tiny_tasks)


class TestBasicOperations:
    def test_get_miss_then_hit(self, make_cache, plan):
        cache = make_cache()
        assert cache.get(plan.fingerprint) is None
        cache.put(plan.fingerprint, plan)
        assert cache.get(plan.fingerprint) is plan
        assert plan.fingerprint in cache
        assert len(cache) == 1

    def test_payload_is_byte_identical_across_hits(self, make_cache, plan):
        cache = make_cache()
        cache.put(plan.fingerprint, plan)
        first = cache.get_payload(plan.fingerprint)
        second = cache.get_payload(plan.fingerprint)
        assert first.encode("utf-8") == second.encode("utf-8")
        assert first == plan_to_json(plan)
        validate_plan_document(json.loads(first))

    def test_invalidate_and_clear(self, make_cache, plan):
        cache = make_cache()
        cache.put(plan.fingerprint, plan)
        assert cache.invalidate(plan.fingerprint)
        assert not cache.invalidate(plan.fingerprint)
        cache.put(plan.fingerprint, plan)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_configuration_rejected(self, make_cache):
        with pytest.raises(CacheError):
            make_cache(capacity=0)
        with pytest.raises(CacheError):
            make_cache(ttl_seconds=0.0)


class TestEviction:
    def test_lru_eviction_order(self, make_cache, plan):
        cache = make_cache(capacity=2)
        cache.put("a", plan)
        cache.put("b", plan)
        assert cache.get("a") is plan  # refresh "a": now "b" is LRU
        cache.put("c", plan)
        assert cache.get("b") is None
        assert cache.get("a") is plan
        assert cache.get("c") is plan
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self, make_cache, plan):
        cache = make_cache(capacity=2)
        cache.put("a", plan)
        cache.put("a", plan)
        cache.put("b", plan)
        assert len(cache) == 2
        assert cache.stats.evictions == 0


class TestTTL:
    def test_entries_expire(self, make_cache, plan):
        clock = FakeClock()
        cache = make_cache(ttl_seconds=10.0, clock=clock)
        cache.put("a", plan)
        clock.advance(9.0)
        assert cache.get("a") is plan
        clock.advance(2.0)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_purge_expired(self, make_cache, plan):
        clock = FakeClock()
        cache = make_cache(ttl_seconds=5.0, clock=clock)
        cache.put("a", plan)
        cache.put("b", plan)
        clock.advance(6.0)
        cache.put("c", plan)
        assert cache.purge_expired() == 2
        assert cache.fingerprints() == ["c"]

    def test_no_ttl_never_expires(self, make_cache, plan):
        clock = FakeClock()
        cache = make_cache(clock=clock)
        cache.put("a", plan)
        clock.advance(1e9)
        assert cache.get("a") is plan
        assert cache.purge_expired() == 0


class TestStats:
    def test_hit_rate(self, make_cache, plan):
        cache = make_cache()
        cache.put("a", plan)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.as_dict()["puts"] == 1


class TestPersistence:
    def test_save_and_load_payloads(self, make_cache, plan, tmp_path):
        cache = make_cache()
        cache.put(plan.fingerprint, plan)
        path = cache.save(tmp_path / "cache.json")
        payload = cache.get_payload(plan.fingerprint)

        restored = make_cache()
        assert restored.load(path) == 1
        # Live plans are not reconstructed — get() reports a miss so callers
        # know they must plan — but payloads are served byte-identically.
        assert restored.get(plan.fingerprint) is None
        assert restored.stats.misses == 1
        assert restored.get_payload(plan.fingerprint) == payload
        assert restored.stats.hits == 1

    def test_load_rejects_garbage(self, make_cache, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(CacheError):
            make_cache().load(path)
        path.write_text('{"format_version": 99, "entries": {}}')
        with pytest.raises(CacheError):
            make_cache().load(path)

    def test_cross_implementation_roundtrip(self, plan, tmp_path):
        """Snapshots written by either implementation load into the other."""
        flat = PlanCache()
        flat.put(plan.fingerprint, plan)
        striped = StripedPlanCache(num_stripes=4)
        assert striped.load(flat.save(tmp_path / "flat.json")) == 1
        assert striped.get_payload(plan.fingerprint) == flat.get_payload(
            plan.fingerprint
        )
        reread = PlanCache()
        assert reread.load(striped.save(tmp_path / "striped.json")) == 1
        assert reread.get_payload(plan.fingerprint) == flat.get_payload(
            plan.fingerprint
        )


class TestStripedInternals:
    def test_global_lru_across_stripes(self, plan):
        """The trim victim is the globally least-recently-used entry even
        when the stripes' local LRU orders disagree."""
        cache = StripedPlanCache(capacity=3, num_stripes=4)
        keys = ["a", "b", "c"]
        for key in keys:
            cache.put(key, plan)
        assert len({cache.stripe_of(k) for k in keys}) > 1  # really striped
        cache.get("a")  # oldest stamp now belongs to "b"
        cache.put("d", plan)
        assert cache.get("b") is None
        assert all(cache.get(k) is plan for k in ("a", "c", "d"))

    def test_stats_merge_over_stripes(self, plan):
        cache = StripedPlanCache(num_stripes=4)
        for key in ("a", "b", "c", "d"):
            cache.put(key, plan)
            cache.get(key)
        cache.get("missing")
        assert cache.stats.puts == 4
        assert cache.stats.hits == 4
        assert cache.stats.misses == 1

    def test_journal_propagates_to_stripes(self):
        cache = StripedPlanCache(num_stripes=2)
        sentinel = object()
        cache.journal = sentinel
        assert all(stripe.journal is sentinel for stripe in cache.stripes)
