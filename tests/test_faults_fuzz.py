"""Seeded property-based fuzz over random fault campaigns.

Each campaign replays a request stream through the hardened plan service
under a randomly drawn (profile, seed) fault schedule and asserts the
service's core invariants.  The campaign draw itself is seeded — from
``REPRO_FUZZ_SEED`` when set (the chaos CI step pins it) — so every failure
is replayable from the seed printed in the assertion message.

Invariants checked per campaign:

* every request resolves with exactly one terminal outcome
  (served / degraded / shed / error);
* with the default resilience policy every request gets a plan
  (availability 1.0 through retry + the degradation ladder);
* every served or degraded plan is byte-identical (modulo the wall-clock
  planning report) to the fault-free solve of the same workload;
* replaying a campaign with the identical seed yields a byte-identical
  canonical report.
"""

import os
import random

import pytest

from repro.experiments.harness import run_resilience_benchmark
from repro.experiments.workloads import clip_workload
from repro.faults import FAULT_PROFILES
from repro.service import (
    RESPONSE_DEGRADED,
    RESPONSE_ERROR,
    RESPONSE_SERVED,
    RESPONSE_SHED,
)

MASTER_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
NUM_CAMPAIGNS = 4
NUM_REQUESTS = 16
NUM_UNIQUE = 6

_OUTCOMES = {RESPONSE_SERVED, RESPONSE_DEGRADED, RESPONSE_SHED, RESPONSE_ERROR}


def _draw_campaigns():
    rng = random.Random(f"fuzz:{MASTER_SEED}")
    profiles = [name for name in ("mild", "chaos") if name in FAULT_PROFILES]
    return [
        (rng.choice(profiles), rng.randrange(10_000)) for _ in range(NUM_CAMPAIGNS)
    ]


CAMPAIGNS = _draw_campaigns()


@pytest.fixture(scope="module")
def workload():
    return clip_workload(4, 8)


@pytest.mark.parametrize(("profile", "seed"), CAMPAIGNS)
def test_campaign_invariants(workload, profile, seed):
    label = f"campaign profile={profile} seed={seed} (REPRO_FUZZ_SEED={MASTER_SEED})"
    result = run_resilience_benchmark(
        workload,
        num_requests=NUM_REQUESTS,
        num_unique=NUM_UNIQUE,
        profile=profile,
        seed=seed,
    )
    # Exactly one terminal outcome per submitted request.
    assert len(result.responses) == NUM_REQUESTS, label
    for response in result.responses:
        assert response.outcome in _OUTCOMES, label
    # The default policy never sheds (unbounded queue) and the reference
    # tier cannot fail, so the ladder guarantees full availability.
    assert result.availability == 1.0, label
    # Every plan served equals its fault-free solve, byte for byte.
    assert result.payload_matches == result.payload_total, label
    assert result.payload_match_rate == 1.0, label


@pytest.mark.parametrize(("profile", "seed"), CAMPAIGNS[:2])
def test_same_seed_same_report(workload, profile, seed):
    kwargs = dict(
        num_requests=NUM_REQUESTS,
        num_unique=NUM_UNIQUE,
        profile=profile,
        seed=seed,
    )
    first = run_resilience_benchmark(workload, **kwargs)
    second = run_resilience_benchmark(workload, **kwargs)
    label = f"profile={profile} seed={seed} (REPRO_FUZZ_SEED={MASTER_SEED})"
    assert first.signature() == second.signature(), label
    assert first.canonical_report() == second.canonical_report(), label
    assert first.fault_plan_signature == second.fault_plan_signature, label
