"""Unit tests for inter-wave transmission construction (§3.6 step 2)."""

import pytest

from repro.core.planner import ExecutionPlanner
from repro.costmodel.comm import LinkClass
from repro.runtime.transmission import (
    build_transmissions,
    total_transmission_time,
    transmission_volume_by_link,
)


@pytest.fixture
def plan(two_island_cluster, tiny_tasks):
    return ExecutionPlanner(two_island_cluster).plan(tiny_tasks)


class TestBuildTransmissions:
    def test_transmissions_are_well_formed(self, plan):
        transmissions = build_transmissions(plan)
        wave_indices = {wave.index for wave in plan.waves}
        for t in transmissions:
            assert t.boundary_after_wave in wave_indices
            assert t.volume_bytes > 0
            assert t.time_seconds >= 0
            assert t.src_devices and t.dst_devices

    def test_residual_flows_exist_for_sliced_metaops(self, plan):
        transmissions = build_transmissions(plan)
        sliced = {
            metaop_index
            for metaop_index in plan.metagraph.metaops
            if sum(
                1
                for wave in plan.waves
                for e in wave.entries
                if e.metaop_index == metaop_index
            )
            > 1
        }
        residual_sources = {
            t.src_metaop for t in transmissions if t.src_metaop == t.dst_metaop
        }
        assert sliced == residual_sources

    def test_inter_metaop_flows_follow_metagraph_edges(self, plan):
        transmissions = build_transmissions(plan)
        edge_pairs = {
            (t.src_metaop, t.dst_metaop)
            for t in transmissions
            if t.src_metaop != t.dst_metaop
        }
        for pair in edge_pairs:
            assert pair in plan.metagraph.edges

    def test_every_positive_volume_edge_is_transmitted(self, plan):
        transmissions = build_transmissions(plan)
        transmitted = {
            (t.src_metaop, t.dst_metaop)
            for t in transmissions
            if t.src_metaop != t.dst_metaop
        }
        for (src, dst), volume in plan.metagraph.edges.items():
            if volume > 0:
                assert (src, dst) in transmitted

    def test_backward_doubles_cost(self, plan):
        fwd_only = build_transmissions(plan, include_backward=False)
        full = build_transmissions(plan, include_backward=True)
        assert total_transmission_time(full) == pytest.approx(
            2 * total_transmission_time(fwd_only)
        )

    def test_local_transfers_are_cheap(self, plan):
        for t in build_transmissions(plan):
            if t.link is LinkClass.INTRA_DEVICE:
                assert t.is_local
                assert t.time_seconds < 1e-3

    def test_volume_by_link_partitions_total(self, plan):
        transmissions = build_transmissions(plan)
        by_link = transmission_volume_by_link(transmissions)
        assert sum(by_link.values()) == pytest.approx(
            sum(t.volume_bytes for t in transmissions)
        )
        assert set(by_link) == set(LinkClass)
