"""Shared fixtures: small clusters, toy tasks and a Fig.-3-style graph."""

from __future__ import annotations

import pytest

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology, make_cluster
from repro.costmodel.flops import (
    LayerConfig,
    make_contrastive_loss_op,
    make_transformer_layer_op,
)
from repro.graph.builder import build_unified_graph
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator, TensorSpec
from repro.graph.task import SpindleTask


def make_layer_op(
    name: str,
    task: str = "task",
    op_type: str = "text_layer",
    modality: str = "text",
    batch: int = 8,
    seq_len: int = 64,
    hidden: int = 256,
    param_key: str | None = None,
) -> Operator:
    """Build a small transformer-layer operator for tests."""
    spec = TensorSpec(batch=batch, seq_len=seq_len, hidden=hidden)
    return make_transformer_layer_op(
        name=name,
        op_type=op_type,
        task=task,
        modality=modality,
        spec=spec,
        config=LayerConfig(hidden_size=hidden),
        param_key=param_key,
    )


def make_chain_task(
    name: str,
    module_layers: dict[str, int],
    batch: int = 8,
    hidden: int = 256,
    seq_len: int = 64,
    shared_prefix: str | None = None,
) -> SpindleTask:
    """Build a task whose modules form a single chain, each with N layers."""
    task = SpindleTask(name, batch_size=batch)
    previous = None
    for module_name, layers in module_layers.items():
        ops = [
            make_layer_op(
                name=f"{name}.{module_name}.layer{i}",
                task=name,
                op_type=f"{module_name}_layer",
                modality=module_name,
                batch=batch,
                seq_len=seq_len,
                hidden=hidden,
                param_key=(
                    f"{shared_prefix}.{module_name}.layer{i}" if shared_prefix else None
                ),
            )
            for i in range(layers)
        ]
        task.add_module(module_name, ops)
        if previous is not None:
            task.add_flow(previous, module_name)
        previous = module_name
    return task


@pytest.fixture
def chain_task_factory():
    """The :func:`make_chain_task` helper, as a fixture for service tests."""
    return make_chain_task


@pytest.fixture
def tiny_device_spec() -> DeviceSpec:
    return DeviceSpec(name="tiny", peak_flops=50e12, memory_bytes=16 * 1024**3)


@pytest.fixture
def single_island_cluster() -> ClusterTopology:
    """Four devices in one island."""
    return make_cluster(4, devices_per_node=4)


@pytest.fixture
def two_island_cluster() -> ClusterTopology:
    """Eight devices split into two islands of four."""
    return make_cluster(8, devices_per_node=4)


@pytest.fixture
def cluster16() -> ClusterTopology:
    """Sixteen devices in two islands of eight (one 'node pair')."""
    return make_cluster(16, devices_per_node=8)


@pytest.fixture
def tiny_tasks() -> list[SpindleTask]:
    """Two toy tasks sharing an 'lm' component (via param keys)."""
    audio_task = make_chain_task(
        "audio_task",
        {"audio": 3, "text": 2, "lm": 3},
        batch=8,
        shared_prefix="shared",
    )
    vision_task = make_chain_task(
        "vision_task",
        {"vision": 2, "lm": 3},
        batch=4,
        shared_prefix="shared",
    )
    return [audio_task, vision_task]


@pytest.fixture
def tiny_graph(tiny_tasks) -> ComputationGraph:
    return build_unified_graph(tiny_tasks)


@pytest.fixture
def contrastive_task() -> SpindleTask:
    """A CLIP-style task: two encoder towers feeding one contrastive loss."""
    task = SpindleTask("pairing", batch_size=8)
    vision_ops = [
        make_layer_op(f"pairing.vision.layer{i}", task="pairing", op_type="vision_layer",
                      modality="vision", batch=8, seq_len=32, hidden=256)
        for i in range(3)
    ]
    text_ops = [
        make_layer_op(f"pairing.text.layer{i}", task="pairing", op_type="text_layer",
                      modality="text", batch=8, seq_len=16, hidden=128)
        for i in range(2)
    ]
    task.add_module("vision", vision_ops)
    task.add_module("text", text_ops)
    task.add_module(
        "loss", [make_contrastive_loss_op("pairing.loss", "pairing", batch=8, embed_dim=128)]
    )
    task.add_flow("vision", "loss")
    task.add_flow("text", "loss")
    return task
