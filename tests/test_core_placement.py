"""Unit tests for device placement (§3.5)."""

import pytest

from repro.core.allocator import ResourceAllocator
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator
from repro.core.placement import LocalityAwarePlacer, PlacementError, SequentialPlacer
from repro.core.scheduler import WavefrontScheduler
from repro.costmodel.memory import MemoryModel, MemoryModelConfig
from repro.costmodel.profiler import SyntheticProfiler
from repro.graph.builder import build_unified_graph


def build_schedule(cluster, tasks):
    """Plan up to (but excluding) placement for the given tasks."""
    graph = build_unified_graph(tasks)
    metagraph = contract_graph(graph)
    curves = ScalabilityEstimator(SyntheticProfiler(cluster)).estimate(metagraph)
    allocations = ResourceAllocator(cluster.num_devices).allocate(metagraph, curves)
    scheduler = WavefrontScheduler(cluster.num_devices)
    metaops_by_level = {
        level: metagraph.metaops_at_level(level) for level in allocations
    }
    schedule = scheduler.schedule(allocations, metaops_by_level, curves)
    return metagraph, schedule


@pytest.fixture
def planned(two_island_cluster, tiny_tasks):
    metagraph, schedule = build_schedule(two_island_cluster, tiny_tasks)
    return two_island_cluster, metagraph, schedule


class TestLocalityAwarePlacer:
    def test_every_entry_gets_the_right_number_of_devices(self, planned):
        cluster, metagraph, schedule = planned
        placement = LocalityAwarePlacer(cluster).place(schedule.waves, metagraph)
        for wave in schedule.waves:
            for entry in wave.entries:
                devices = placement.devices_for(wave.index, entry.metaop_index)
                assert len(devices) == entry.n_devices
                assert len(set(devices)) == entry.n_devices
                assert all(0 <= d < cluster.num_devices for d in devices)

    def test_no_device_double_booked_within_a_wave(self, planned):
        cluster, metagraph, schedule = planned
        placement = LocalityAwarePlacer(cluster).place(schedule.waves, metagraph)
        for wave in schedule.waves:
            used: list[int] = []
            for entry in wave.entries:
                used.extend(placement.devices_for(wave.index, entry.metaop_index))
            assert len(used) == len(set(used))

    def test_small_entries_stay_within_one_island(self, planned):
        cluster, metagraph, schedule = planned
        placement = LocalityAwarePlacer(cluster).place(schedule.waves, metagraph)
        for wave in schedule.waves:
            for entry in wave.entries:
                if entry.n_devices > cluster.devices_per_node:
                    continue
                devices = placement.devices_for(wave.index, entry.metaop_index)
                islands = {cluster.island_of(d) for d in devices}
                assert len(islands) == 1

    def test_same_metaop_prefers_same_devices_across_waves(self, planned):
        cluster, metagraph, schedule = planned
        placement = LocalityAwarePlacer(cluster).place(schedule.waves, metagraph)
        moves = 0
        slices: dict[int, list[tuple[int, ...]]] = {}
        for wave in schedule.waves:
            for entry in wave.entries:
                slices.setdefault(entry.metaop_index, []).append(
                    placement.devices_for(wave.index, entry.metaop_index)
                )
        stayed = 0
        total = 0
        for history in slices.values():
            for prev, nxt in zip(history, history[1:]):
                total += 1
                if set(prev) & set(nxt):
                    stayed += 1
                else:
                    moves += 1
        if total:
            assert stayed >= moves

    def test_memory_accounted_for_every_device(self, planned):
        cluster, metagraph, schedule = planned
        memory_model = MemoryModel()
        placement = LocalityAwarePlacer(cluster, memory_model).place(
            schedule.waves, metagraph
        )
        assert set(placement.device_memory_bytes) == set(range(cluster.num_devices))
        for value in placement.device_memory_bytes.values():
            assert value >= memory_model.framework_overhead()

    def test_oom_recorded_when_memory_is_scarce(self, two_island_cluster, tiny_tasks):
        metagraph, schedule = build_schedule(two_island_cluster, tiny_tasks)
        # An absurdly large activation multiplier guarantees projected OOM.
        scarce = MemoryModel(
            MemoryModelConfig(activation_multiplier=1e7, framework_overhead_bytes=0.0)
        )
        placer = LocalityAwarePlacer(two_island_cluster, scarce, max_backtracks=10_000)
        placement = placer.place(schedule.waves, metagraph)
        assert placement.oom_events
        assert placement.backtracks > 0

    def test_memory_imbalance_metric(self, planned):
        cluster, metagraph, schedule = planned
        placement = LocalityAwarePlacer(cluster).place(schedule.waves, metagraph)
        assert placement.memory_imbalance() >= 1.0


class TestSequentialPlacer:
    def test_consecutive_device_blocks(self, planned):
        cluster, metagraph, schedule = planned
        placement = SequentialPlacer(cluster).place(schedule.waves, metagraph)
        for wave in schedule.waves:
            cursor = 0
            for entry in sorted(wave.entries, key=lambda e: e.metaop_index):
                devices = placement.devices_for(wave.index, entry.metaop_index)
                assert devices == tuple(range(cursor, cursor + entry.n_devices))
                cursor += entry.n_devices

    def test_sequential_placement_moves_metaops_more(self, planned):
        """The ablation baseline causes more cross-wave device churn."""
        cluster, metagraph, schedule = planned
        locality = LocalityAwarePlacer(cluster).place(schedule.waves, metagraph)
        sequential = SequentialPlacer(cluster).place(schedule.waves, metagraph)

        def churn(placement):
            history: dict[int, list[tuple[int, ...]]] = {}
            for wave in schedule.waves:
                for entry in wave.entries:
                    history.setdefault(entry.metaop_index, []).append(
                        placement.devices_for(wave.index, entry.metaop_index)
                    )
            moved = 0
            for slices in history.values():
                for prev, nxt in zip(slices, slices[1:]):
                    moved += len(set(nxt) - set(prev))
            return moved

        assert churn(sequential) >= churn(locality)


class TestPlacementErrors:
    def test_oversized_wave_rejected(self, planned):
        cluster, metagraph, schedule = planned
        placer = LocalityAwarePlacer(cluster)
        # Corrupt a wave entry to request more devices than the cluster has.
        wave = schedule.waves[0]
        wave.entries[0].n_devices = cluster.num_devices + 1
        with pytest.raises(PlacementError):
            placer.place([wave], metagraph)
