"""Unit tests for SpindleTask, ModuleSpec and the add_flow API."""

import pytest

from repro.graph.task import ModuleSpec, SpindleTask, TaskError
from tests.conftest import make_chain_task, make_layer_op


class TestModuleSpec:
    def test_aggregates(self):
        ops = [make_layer_op(f"t.m.{i}", task="t") for i in range(3)]
        module = ModuleSpec(name="m", operators=ops)
        assert module.num_operators == 3
        assert module.first is ops[0]
        assert module.last is ops[-1]
        assert module.flops == pytest.approx(sum(o.flops for o in ops))
        assert module.param_bytes == pytest.approx(sum(o.param_bytes for o in ops))

    def test_rejects_empty(self):
        with pytest.raises(TaskError):
            ModuleSpec(name="m", operators=[])
        with pytest.raises(TaskError):
            ModuleSpec(name="", operators=[make_layer_op("t.a", task="t")])


class TestSpindleTask:
    def test_invalid_construction(self):
        with pytest.raises(TaskError):
            SpindleTask("", batch_size=1)
        with pytest.raises(TaskError):
            SpindleTask("t", batch_size=0)

    def test_add_module_and_lookup(self):
        task = SpindleTask("t", batch_size=8)
        ops = [make_layer_op("t.enc.0", task="t")]
        module = task.add_module("enc", ops)
        assert task.module("enc") is module
        assert task.module_names == ["enc"]
        assert task.num_operators == 1

    def test_duplicate_module_rejected(self):
        task = SpindleTask("t")
        task.add_module("enc", [make_layer_op("t.enc.0", task="t")])
        with pytest.raises(TaskError):
            task.add_module("enc", [make_layer_op("t.enc.1", task="t")])

    def test_operator_from_other_task_rejected(self):
        task = SpindleTask("t")
        with pytest.raises(TaskError):
            task.add_module("enc", [make_layer_op("x.enc.0", task="other")])

    def test_add_flow_validates_modules(self):
        task = SpindleTask("t")
        task.add_module("a", [make_layer_op("t.a.0", task="t")])
        with pytest.raises(TaskError):
            task.add_flow("a", "missing")
        with pytest.raises(TaskError):
            task.add_flow("a", "a")

    def test_modalities(self):
        task = make_chain_task("t", {"audio": 2, "text": 1})
        assert task.modalities == ["audio", "text"]


class TestBuildGraph:
    def test_chain_lowering(self):
        task = make_chain_task("t", {"enc": 3, "dec": 2})
        graph = task.build_graph()
        assert graph.num_operators == 5
        # Chain inside modules plus one inter-module flow.
        assert graph.num_flows == 2 + 1 + 1
        assert graph.sources() == ["t.enc.layer0"]
        assert graph.sinks() == ["t.dec.layer1"]

    def test_multi_tower_lowering(self, contrastive_task):
        graph = contrastive_task.build_graph()
        loss = "pairing.loss"
        assert graph.in_degree(loss) == 2
        assert set(graph.sources()) == {"pairing.vision.layer0", "pairing.text.layer0"}

    def test_empty_task_rejected(self):
        with pytest.raises(TaskError):
            SpindleTask("t").build_graph()

    def test_flow_volume_override(self):
        task = SpindleTask("t", batch_size=2)
        task.add_module("a", [make_layer_op("t.a.0", task="t")])
        task.add_module("b", [make_layer_op("t.b.0", task="t")])
        task.add_flow("a", "b", volume_bytes=123.0)
        graph = task.build_graph()
        assert graph.flow("t.a.0", "t.b.0").volume_bytes == 123.0

    def test_cyclic_flows_rejected(self):
        task = SpindleTask("t")
        task.add_module("a", [make_layer_op("t.a.0", task="t")])
        task.add_module("b", [make_layer_op("t.b.0", task="t")])
        task.add_flow("a", "b")
        task.add_flow("b", "a")
        with pytest.raises(TaskError):
            task.build_graph()
