"""Tests for dynamic multi-task workloads (Appendix D)."""

import pytest

from repro.baselines.sequential import DeepSpeedSystem
from repro.baselines.spindle_system import SpindleSystem
from repro.dynamic.workload import (
    DynamicWorkloadError,
    DynamicWorkloadRunner,
    DynamicWorkloadSchedule,
    WorkloadPhase,
)
from repro.service.cache import PlanCache


@pytest.fixture
def schedule(tiny_tasks):
    return DynamicWorkloadSchedule.from_tasks(
        tiny_tasks,
        phases=[
            (["audio_task"], 10),
            (["audio_task", "vision_task"], 20),
            (["vision_task"], 5),
        ],
    )


class TestScheduleConstruction:
    def test_from_tasks(self, schedule):
        assert len(schedule.phases) == 3
        assert schedule.total_iterations == 35
        assert [t.name for t in schedule.tasks_for(schedule.phases[1])] == [
            "audio_task",
            "vision_task",
        ]

    def test_unknown_task_rejected(self, tiny_tasks):
        schedule = DynamicWorkloadSchedule.from_tasks(tiny_tasks, phases=[])
        with pytest.raises(DynamicWorkloadError):
            schedule.add_phase("p", ["missing_task"], 5)

    def test_invalid_phase(self):
        with pytest.raises(DynamicWorkloadError):
            WorkloadPhase(name="p", task_names=(), num_iterations=5)
        with pytest.raises(DynamicWorkloadError):
            WorkloadPhase(name="p", task_names=("a",), num_iterations=0)

    def test_runner_requires_phases(self, tiny_tasks):
        empty = DynamicWorkloadSchedule.from_tasks(tiny_tasks, phases=[])
        with pytest.raises(DynamicWorkloadError):
            DynamicWorkloadRunner(empty)


class TestRunner:
    def test_run_produces_phase_results(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        assert len(result.phase_results) == 3
        assert result.total_time > 0

    def test_cumulative_curve_is_monotone(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        curve = result.cumulative_curve()
        assert curve[-1][0] == schedule.total_iterations
        iterations = [p[0] for p in curve]
        times = [p[1] for p in curve]
        assert iterations == sorted(iterations)
        assert times == sorted(times)
        assert result.total_time == pytest.approx(times[-1])

    def test_spindle_replans_per_phase(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(SpindleSystem(two_island_cluster))
        assert all(p.replanning_seconds > 0 for p in result.phase_results)
        # Replanning cost is negligible against the phase training time.
        for phase_result in result.phase_results:
            assert phase_result.replanning_seconds < phase_result.phase_time

    def test_run_all_compares_systems(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        results = runner.run_all(
            [SpindleSystem(two_island_cluster), DeepSpeedSystem(two_island_cluster)]
        )
        assert set(results) == {"spindle", "deepspeed"}
        # Spindle adapts its plan to every phase and never ends up slower.
        assert results["spindle"].total_time <= results["deepspeed"].total_time * 1.05

    def test_phase_time_accounts_iterations(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        first = result.phase_results[0]
        assert first.phase_time == pytest.approx(
            first.replanning_seconds + 10 * first.iteration_time
        )

    def test_unchanged_task_set_not_charged_replanning(
        self, tiny_tasks, two_island_cluster
    ):
        schedule = DynamicWorkloadSchedule.from_tasks(
            tiny_tasks,
            phases=[
                (["audio_task"], 10),
                (["audio_task"], 5),  # same task set: keeps the current plan
                (["audio_task", "vision_task"], 5),
            ],
        )
        result = DynamicWorkloadRunner(schedule).run(
            SpindleSystem(two_island_cluster)
        )
        charged = [p.replanning_seconds for p in result.phase_results]
        assert charged[0] > 0
        assert charged[1] == 0.0
        assert charged[2] > 0


class TestCachedPlanning:
    @pytest.fixture
    def recurring_schedule(self, tiny_tasks):
        """A -> B -> A: the third phase repeats the first task set."""
        return DynamicWorkloadSchedule.from_tasks(
            tiny_tasks,
            phases=[
                (["audio_task"], 10),
                (["audio_task", "vision_task"], 20),
                (["audio_task"], 5),
            ],
        )

    def test_cache_hit_phases_cost_zero_replanning(
        self, recurring_schedule, two_island_cluster
    ):
        runner = DynamicWorkloadRunner(recurring_schedule, plan_cache=PlanCache())
        result = runner.run(SpindleSystem(two_island_cluster))
        charged = [p.replanning_seconds for p in result.phase_results]
        assert charged[0] > 0  # first encounter plans
        assert charged[1] > 0  # new task set plans
        assert charged[2] == 0.0  # recurring task set served from the cache

    def test_cached_run_matches_uncached_iteration_times(
        self, recurring_schedule, two_island_cluster
    ):
        cached = DynamicWorkloadRunner(
            recurring_schedule, plan_cache=PlanCache()
        ).run(SpindleSystem(two_island_cluster))
        uncached = DynamicWorkloadRunner(recurring_schedule).run(
            SpindleSystem(two_island_cluster)
        )
        for cached_phase, uncached_phase in zip(
            cached.phase_results, uncached.phase_results
        ):
            assert cached_phase.iteration_time == pytest.approx(
                uncached_phase.iteration_time
            )

    def test_cache_detached_after_run(self, recurring_schedule, two_island_cluster):
        system = SpindleSystem(two_island_cluster)
        DynamicWorkloadRunner(recurring_schedule, plan_cache=PlanCache()).run(system)
        assert system.plan_cache is None

    def test_cache_ignored_for_unaware_systems(
        self, recurring_schedule, two_island_cluster
    ):
        runner = DynamicWorkloadRunner(recurring_schedule, plan_cache=PlanCache())
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        assert len(result.phase_results) == 3
