"""Tests for dynamic multi-task workloads (Appendix D)."""

import pytest

from repro.baselines.sequential import DeepSpeedSystem
from repro.baselines.spindle_system import SpindleSystem
from repro.dynamic.workload import (
    DynamicWorkloadError,
    DynamicWorkloadRunner,
    DynamicWorkloadSchedule,
    WorkloadPhase,
)


@pytest.fixture
def schedule(tiny_tasks):
    return DynamicWorkloadSchedule.from_tasks(
        tiny_tasks,
        phases=[
            (["audio_task"], 10),
            (["audio_task", "vision_task"], 20),
            (["vision_task"], 5),
        ],
    )


class TestScheduleConstruction:
    def test_from_tasks(self, schedule):
        assert len(schedule.phases) == 3
        assert schedule.total_iterations == 35
        assert [t.name for t in schedule.tasks_for(schedule.phases[1])] == [
            "audio_task",
            "vision_task",
        ]

    def test_unknown_task_rejected(self, tiny_tasks):
        schedule = DynamicWorkloadSchedule.from_tasks(tiny_tasks, phases=[])
        with pytest.raises(DynamicWorkloadError):
            schedule.add_phase("p", ["missing_task"], 5)

    def test_invalid_phase(self):
        with pytest.raises(DynamicWorkloadError):
            WorkloadPhase(name="p", task_names=(), num_iterations=5)
        with pytest.raises(DynamicWorkloadError):
            WorkloadPhase(name="p", task_names=("a",), num_iterations=0)

    def test_runner_requires_phases(self, tiny_tasks):
        empty = DynamicWorkloadSchedule.from_tasks(tiny_tasks, phases=[])
        with pytest.raises(DynamicWorkloadError):
            DynamicWorkloadRunner(empty)


class TestRunner:
    def test_run_produces_phase_results(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        assert len(result.phase_results) == 3
        assert result.total_time > 0

    def test_cumulative_curve_is_monotone(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        curve = result.cumulative_curve()
        assert curve[-1][0] == schedule.total_iterations
        iterations = [p[0] for p in curve]
        times = [p[1] for p in curve]
        assert iterations == sorted(iterations)
        assert times == sorted(times)
        assert result.total_time == pytest.approx(times[-1])

    def test_spindle_replans_per_phase(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(SpindleSystem(two_island_cluster))
        assert all(p.replanning_seconds > 0 for p in result.phase_results)
        # Replanning cost is negligible against the phase training time.
        for phase_result in result.phase_results:
            assert phase_result.replanning_seconds < phase_result.phase_time

    def test_run_all_compares_systems(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        results = runner.run_all(
            [SpindleSystem(two_island_cluster), DeepSpeedSystem(two_island_cluster)]
        )
        assert set(results) == {"spindle", "deepspeed"}
        # Spindle adapts its plan to every phase and never ends up slower.
        assert results["spindle"].total_time <= results["deepspeed"].total_time * 1.05

    def test_phase_time_accounts_iterations(self, schedule, two_island_cluster):
        runner = DynamicWorkloadRunner(schedule)
        result = runner.run(DeepSpeedSystem(two_island_cluster))
        first = result.phase_results[0]
        assert first.phase_time == pytest.approx(
            first.replanning_seconds + 10 * first.iteration_time
        )
