"""Unit tests for the end-to-end execution planner."""

import pytest

from repro.core.plan import PlanError
from repro.core.planner import ExecutionPlanner
from tests.conftest import make_chain_task


class TestExecutionPlanner:
    @pytest.fixture
    def planner(self, two_island_cluster):
        return ExecutionPlanner(two_island_cluster)

    def test_plan_from_tasks(self, planner, tiny_tasks):
        plan = planner.plan(tiny_tasks)
        plan.validate()
        assert plan.metagraph.num_metaops > 0
        assert plan.schedule.num_waves > 0
        assert plan.estimated_compute_makespan > 0

    def test_plan_from_graph(self, planner, tiny_graph):
        plan = planner.plan(tiny_graph)
        plan.validate()
        assert plan.metagraph.num_operators == tiny_graph.num_operators

    def test_empty_workload_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan([])

    def test_report_covers_all_stages(self, planner, tiny_tasks):
        plan = planner.plan(tiny_tasks)
        stages = set(plan.report.stage_seconds)
        assert stages == {
            "graph_contraction",
            "scalability_estimation",
            "resource_allocation",
            "wavefront_scheduling",
            "device_placement",
        }
        assert plan.report.total_seconds > 0
        assert plan.report.num_metaops == plan.metagraph.num_metaops
        assert plan.report.num_waves == plan.schedule.num_waves
        assert set(plan.report.level_c_star) == set(plan.level_allocations)

    def test_theoretical_optimum_is_a_lower_bound_estimate(self, planner, tiny_tasks):
        plan = planner.plan(tiny_tasks)
        assert plan.theoretical_optimum > 0
        # The schedule cannot beat the sum of per-level optima by much (only
        # estimation error can make it appear faster).
        assert plan.estimated_compute_makespan >= plan.theoretical_optimum * 0.8

    def test_all_operators_scheduled_once(self, planner, tiny_tasks):
        plan = planner.plan(tiny_tasks)
        scheduled = sum(
            entry.layers for wave in plan.waves for entry in wave.entries
        )
        assert scheduled == plan.metagraph.num_operators

    def test_sequential_placement_strategy(self, two_island_cluster, tiny_tasks):
        planner = ExecutionPlanner(two_island_cluster, placement_strategy="sequential")
        plan = planner.plan(tiny_tasks)
        plan.validate()

    def test_unknown_placement_strategy_rejected(self, two_island_cluster):
        with pytest.raises(ValueError):
            ExecutionPlanner(two_island_cluster, placement_strategy="bogus")

    def test_profile_noise_still_produces_valid_plans(self, two_island_cluster, tiny_tasks):
        planner = ExecutionPlanner(two_island_cluster, profile_noise_std=0.15)
        plan = planner.plan(tiny_tasks)
        plan.validate()

    def test_single_task_workload(self, planner):
        task = make_chain_task("solo", {"enc": 4, "dec": 2}, batch=8)
        plan = planner.plan([task])
        plan.validate()
        assert set(plan.metagraph.tasks()) == {"solo"}

    def test_many_small_tasks_on_small_cluster(self, single_island_cluster):
        """More MetaOps than devices: waves must serialise without violations."""
        tasks = [
            make_chain_task(f"t{i}", {"enc": 2}, batch=4, hidden=128)
            for i in range(6)
        ]
        planner = ExecutionPlanner(single_island_cluster)
        plan = planner.plan(tasks)
        plan.validate()
        for wave in plan.waves:
            assert wave.devices_used <= single_island_cluster.num_devices

    def test_validate_detects_corrupted_plan(self, planner, tiny_tasks):
        plan = planner.plan(tiny_tasks)
        plan.waves[0].entries[0].layers += 1
        with pytest.raises(PlanError):
            plan.validate()

    def test_plans_are_deterministic(self, two_island_cluster, tiny_tasks):
        plan_a = ExecutionPlanner(two_island_cluster).plan(tiny_tasks)
        plan_b = ExecutionPlanner(two_island_cluster).plan(tiny_tasks)
        assert plan_a.estimated_compute_makespan == pytest.approx(
            plan_b.estimated_compute_makespan
        )
        assert plan_a.schedule.num_waves == plan_b.schedule.num_waves
        assert plan_a.placement.assignments == plan_b.placement.assignments
