"""Spec-class-aware planning: grouping, per-class curves, equivalence, gains.

Three contracts are pinned here:

* **Homogeneous byte-identity** — the spec-class refactor must not move a
  single byte of any homogeneous plan: fingerprints and serialized plan
  documents across the Fig. 8 grid are compared against values captured from
  the pre-refactor planner (``tests/data/fig8_plan_identity.json``).
* **Optimized/reference equivalence on mixed specs** — the vectorized and the
  reference planner must emit identical heterogeneity-aware plans on
  mixed-spec and irregular topologies, with and without profiling noise.
* **Never worse than slowest-device pacing** — the per-level fallback
  comparison guarantees the aware planner's simulated iteration time never
  exceeds the ``spec_aware=False`` floor-paced plan's.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC, DeviceSpec
from repro.cluster.topology import (
    ClusterTopology,
    make_cluster,
    make_heterogeneous_cluster,
)
from repro.core.estimator import ScalabilityEstimator
from repro.core.hetero import partition_level
from repro.core.planner import ExecutionPlanner
from repro.core.serialization import plan_to_dict
from repro.costmodel.profiler import SyntheticProfiler
from repro.runtime.engine import RuntimeEngine
from tests.conftest import make_chain_task, make_layer_op

IDENTITY_FILE = Path(__file__).parent / "data" / "fig8_plan_identity.json"

MID_SPEC = DeviceSpec(
    name="MidGPU-80GB",
    peak_flops=170e12,
    memory_bytes=A800_SPEC.memory_bytes,
    achievable_fraction=0.55,
)


@pytest.fixture
def tasks():
    return [
        make_chain_task("audio_task", {"audio": 3, "lm": 3}, batch=8),
        make_chain_task("vision_task", {"vision": 2, "lm": 2}, batch=4),
        make_chain_task("text_task", {"text": 2}, batch=2),
    ]


def mixed_clusters() -> list[ClusterTopology]:
    return [
        make_heterogeneous_cluster([A800_SPEC, MID_SPEC], devices_per_node=4),
        make_heterogeneous_cluster(
            [A800_SPEC, MID_SPEC, TEST_GPU_SPEC], devices_per_node=4
        ),
        make_heterogeneous_cluster(
            [A800_SPEC, A800_SPEC.degraded(0.5)],
            devices_per_node=8,
            island_sizes=(7, 8),
        ),
    ]


class TestSpecClasses:
    def test_homogeneous_cluster_is_one_class(self):
        cluster = make_cluster(16)
        classes = cluster.spec_classes()
        assert len(classes) == 1
        assert classes[0].spec == A800_SPEC
        assert classes[0].islands == (0, 1)
        assert classes[0].device_ids == tuple(range(16))
        assert cluster.num_spec_classes == 1

    def test_classes_ordered_fastest_first(self):
        cluster = make_heterogeneous_cluster(
            [TEST_GPU_SPEC, A800_SPEC, MID_SPEC, A800_SPEC], devices_per_node=4
        )
        classes = cluster.spec_classes()
        assert [cls.spec.name for cls in classes] == [
            A800_SPEC.name,
            MID_SPEC.name,
            TEST_GPU_SPEC.name,
        ]
        rates = [cls.achievable_flops for cls in classes]
        assert rates == sorted(rates, reverse=True)
        # The two A800 islands merge into one class.
        assert classes[0].islands == (1, 3)
        assert classes[0].num_devices == 8

    def test_device_and_island_lookups(self):
        cluster = make_heterogeneous_cluster(
            [MID_SPEC, A800_SPEC], devices_per_node=4
        )
        assert cluster.spec_class_of_island(1) == 0  # A800 is the fast class
        assert cluster.spec_class_of_island(0) == 1
        assert cluster.spec_class_of(0) == 1
        assert cluster.spec_class_of(4) == 0

    def test_capacity_and_pacing(self):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, MID_SPEC], devices_per_node=4
        )
        fast, mid = cluster.spec_classes()
        assert fast.achievable_flops == A800_SPEC.achievable_flops
        assert fast.capacity_flops == 4 * A800_SPEC.achievable_flops
        assert mid.capacity_flops == 4 * MID_SPEC.achievable_flops

    def test_partition_covered_by_signature(self):
        """The class partition derives from node_specs, which the canonical
        document embeds: different partitions can never share a signature,
        and equal documents imply equal partitions."""
        a = make_heterogeneous_cluster([A800_SPEC, MID_SPEC], devices_per_node=4)
        b = make_heterogeneous_cluster([MID_SPEC, A800_SPEC], devices_per_node=4)
        c = make_heterogeneous_cluster([A800_SPEC, MID_SPEC], devices_per_node=4)
        assert a.signature() != b.signature()
        assert a.signature() == c.signature()
        assert [cls.spec.name for cls in a.spec_classes()] == [
            cls.spec.name for cls in c.spec_classes()
        ]


class TestPerClassCurves:
    def test_class_curves_pace_at_class_rate(self):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster))
        fast, slow = cluster.spec_classes()
        metaop = _metaop()
        fast_curve = estimator.estimate_metaops_for_class([(0, metaop)], fast)[0]
        slow_curve = estimator.estimate_metaops_for_class([(0, metaop)], slow)[0]
        assert fast_curve.time(1) < slow_curve.time(1)
        # Curves only cover the class's own device range.
        assert fast_curve.max_devices == fast.num_devices
        assert slow_curve.max_devices == slow.num_devices

    def test_class_curves_cached_per_class(self):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster))
        fast, slow = cluster.spec_classes()
        a = estimator.estimate_metaops_for_class([(0, _metaop())], fast)[0]
        b = estimator.estimate_metaops_for_class([(1, _metaop())], fast)[1]
        c = estimator.estimate_metaops_for_class([(0, _metaop())], slow)[0]
        assert a is b  # same class, same workload signature: one profile
        assert a is not c  # different class: distinct cache entry

    def test_base_estimation_does_not_collide_with_class_cache(self):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster))
        fast = cluster.spec_classes()[0]
        class_curve = estimator.estimate_metaops_for_class([(0, _metaop())], fast)[0]
        base_curve = estimator.estimate_metaop(_metaop())
        assert class_curve is not base_curve
        # Base curves pace on the floor: slower than the fast class's curve.
        assert base_curve.time(1) > class_curve.time(1)


def _metaop(index: int = 0, batch: int = 8):
    from repro.core.metagraph import MetaOp

    ops = [make_layer_op(f"m{index}.{i}", batch=batch) for i in range(4)]
    return MetaOp(index=index, operators=ops)


class TestPartitionHeuristic:
    def test_heavy_metaops_land_on_the_fast_class(self, tasks):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        from repro.core.contraction import contract_graph
        from repro.graph.builder import build_unified_graph

        metagraph = contract_graph(build_unified_graph(tasks))
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster))
        curves = estimator.estimate(metagraph)
        classes = cluster.spec_classes()
        for indices in metagraph.levels():
            metaops = [metagraph.metaop(i) for i in indices]
            assignment = partition_level(metaops, curves, classes)
            assert set(assignment) == {m.index for m in metaops}
            work = {
                m.index: curves[m.index].time(1) * m.num_operators for m in metaops
            }
            heaviest = max(work, key=lambda idx: (work[idx], -idx))
            assert assignment[heaviest] == 0  # fastest class

    def test_single_class_partition_is_identity(self, tasks):
        cluster = make_cluster(8)
        from repro.core.contraction import contract_graph
        from repro.graph.builder import build_unified_graph

        metagraph = contract_graph(build_unified_graph(tasks))
        curves = ScalabilityEstimator(SyntheticProfiler(cluster)).estimate(metagraph)
        metaops = list(metagraph.metaops.values())
        assignment = partition_level(metaops, curves, cluster.spec_classes())
        assert set(assignment.values()) == {0}


class TestHomogeneousByteIdentity:
    """The refactor must not move a byte of any homogeneous plan."""

    def test_fig8_grid_matches_pre_refactor_capture(self):
        from repro.experiments.workloads import fig8_workloads

        pinned = json.loads(IDENTITY_FILE.read_text())
        for workload in fig8_workloads():
            plan = ExecutionPlanner(workload.cluster()).plan(workload.tasks())
            document = plan_to_dict(plan)
            document.pop("planning_report")
            payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
            doc_hash = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            expected = pinned[workload.name]
            assert plan.fingerprint == expected["fingerprint"], workload.name
            assert doc_hash == expected["plan_doc_sha256"], workload.name

    def test_homogeneous_plans_ignore_spec_aware_flag(self, tasks):
        """Identical plan *content* either way; only the cache fingerprint
        differs (spec_aware=False marks its config so the two configurations
        never share cache entries)."""
        cluster = make_cluster(8)
        aware = ExecutionPlanner(cluster).plan(tasks)
        floor = ExecutionPlanner(cluster, spec_aware=False).plan(tasks)
        da = plan_to_dict(aware)
        da.pop("planning_report")
        da.pop("fingerprint")
        df = plan_to_dict(floor)
        df.pop("planning_report")
        df.pop("fingerprint")
        assert da == df
        assert aware.fingerprint != floor.fingerprint
        assert aware.report.partitioned_levels == 0

    def test_homogeneous_entries_carry_no_spec_class(self, tasks):
        plan = ExecutionPlanner(make_cluster(8)).plan(tasks)
        for wave in plan.waves:
            for entry in wave.entries:
                assert entry.spec_class is None
        document = plan_to_dict(plan)
        assert "spec_class" not in json.dumps(document)


class TestHeterogeneousEquivalence:
    @pytest.mark.parametrize("index", range(3))
    def test_optimized_matches_reference_on_mixed_specs(self, index, tasks):
        cluster = mixed_clusters()[index]
        optimized = ExecutionPlanner(cluster).plan(tasks)
        reference = ExecutionPlanner(cluster, optimized=False).plan(tasks)
        assert optimized.fingerprint == reference.fingerprint
        do = plan_to_dict(optimized)
        do.pop("planning_report")
        dr = plan_to_dict(reference)
        dr.pop("planning_report")
        assert do == dr

    def test_noisy_profiling_equivalent_on_mixed_specs(self, tasks):
        cluster = mixed_clusters()[0]
        optimized = ExecutionPlanner(cluster, profile_noise_std=0.05).plan(tasks)
        reference = ExecutionPlanner(
            cluster, profile_noise_std=0.05, optimized=False
        ).plan(tasks)
        assert optimized.fingerprint == reference.fingerprint
        do = plan_to_dict(optimized)
        do.pop("planning_report")
        dr = plan_to_dict(reference)
        dr.pop("planning_report")
        assert do == dr

    def test_repeat_planning_is_stable_on_mixed_specs(self, tasks):
        planner = ExecutionPlanner(mixed_clusters()[0])
        first = plan_to_dict(planner.plan(tasks))
        second = plan_to_dict(planner.plan(tasks))
        first.pop("planning_report")
        second.pop("planning_report")
        assert first == second


class TestHeterogeneousPlans:
    @pytest.mark.parametrize("index", range(3))
    def test_aware_never_worse_than_floor_pacing(self, index, tasks):
        cluster = mixed_clusters()[index]
        aware = ExecutionPlanner(cluster).plan(tasks)
        floor = ExecutionPlanner(cluster, spec_aware=False).plan(tasks)
        aware_time = RuntimeEngine(aware).run_iteration().iteration_time
        floor_time = RuntimeEngine(floor).run_iteration().iteration_time
        assert aware_time <= floor_time * (1 + 1e-9)

    def test_partitioned_entries_stay_on_their_class_islands(self, tasks):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        plan = ExecutionPlanner(cluster).plan(tasks)
        assert plan.report.partitioned_levels >= 1
        classes = {cls.index: set(cls.device_ids) for cls in cluster.spec_classes()}
        saw_partitioned_entry = False
        for wave in plan.waves:
            for entry in wave.entries:
                if entry.spec_class is None:
                    continue
                saw_partitioned_entry = True
                devices = set(
                    plan.placement.devices_for(wave.index, entry.metaop_index)
                )
                assert devices <= classes[entry.spec_class]
        assert saw_partitioned_entry

    def test_partitioned_waves_respect_class_budgets(self, tasks):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, MID_SPEC], devices_per_node=4
        )
        plan = ExecutionPlanner(cluster).plan(tasks)
        sizes = {cls.index: cls.num_devices for cls in cluster.spec_classes()}
        for wave in plan.waves:
            used: dict[int, int] = {}
            for entry in wave.entries:
                if entry.spec_class is not None:
                    used[entry.spec_class] = (
                        used.get(entry.spec_class, 0) + entry.n_devices
                    )
            for cls_index, devices in used.items():
                assert devices <= sizes[cls_index]

    def test_spec_class_serialized_on_hetero_plans(self, tasks):
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        plan = ExecutionPlanner(cluster).plan(tasks)
        document = plan_to_dict(plan)
        entries = [
            entry
            for wave in document["waves"]
            for entry in wave["entries"]
            if "spec_class" in entry
        ]
        assert entries, "heterogeneous plans must serialize spec classes"
        partitioned = [
            level
            for level in document["level_allocations"].values()
            if "spec_classes" in level
        ]
        assert partitioned
        for level in partitioned:
            assert set(level["class_sizes"]) >= set(
                str(v) for v in level["spec_classes"].values()
            )

    def test_simulator_paces_entries_on_their_class(self, tasks):
        """A plan with identical structure runs faster when its entries pace
        on the fast class than when floor-paced: compare the same workload on
        a mixed cluster with aware vs floor planning, where the aware plan's
        fast-class entries must finish quicker than floor pacing would
        allow."""
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, TEST_GPU_SPEC], devices_per_node=4
        )
        aware = ExecutionPlanner(cluster).plan(tasks)
        result = RuntimeEngine(aware).run_iteration()
        assert result.iteration_time > 0
        # Every placed device belongs to the cluster.
        for wave in aware.waves:
            for entry in wave.entries:
                assert len(entry.devices) == entry.n_devices

    def test_validate_passes_on_partitioned_plans(self, tasks):
        for cluster in mixed_clusters():
            plan = ExecutionPlanner(cluster).plan(tasks)
            plan.validate()


class TestPartitionFallbackGuard:
    def test_class_infeasible_grid_falls_back_to_classic(self, tasks):
        """A valid-allocation rule with no valid count inside one class's few
        devices must not abort planning: the classic cluster-spanning
        allocation (which is feasible) wins the level (regression)."""

        def multiples_of_six(metaop, max_devices):
            return [n for n in range(6, max_devices + 1, 6)]

        # Near-equal specs so the 4-device class receives a real work share
        # (and therefore hits its empty multiples-of-six grid).
        cluster = make_heterogeneous_cluster(
            [A800_SPEC, A800_SPEC.degraded(0.9)],
            devices_per_node=6,
            island_sizes=(6, 4),
        )
        plan = ExecutionPlanner(
            cluster, valid_allocation_fn=multiples_of_six
        ).plan(tasks)
        plan.validate()
        assert plan.report.partitioned_levels == 0
        for wave in plan.waves:
            for entry in wave.entries:
                assert entry.spec_class is None
