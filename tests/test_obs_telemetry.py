"""Tests for request-scoped telemetry: IDs, the journal, lifecycle reducers."""

import json

import pytest

from repro.obs import (
    JournalError,
    TelemetryJournal,
    TraceIdGenerator,
    attribution_report,
    reconstruct_requests,
    validate_event,
    validate_journal,
)
from repro.obs.telemetry import (
    EVENT_FIELDS,
    EVENT_KINDS,
    JOURNAL_SCHEMA_VERSION,
    event_line,
    unattributed_events,
)


class TestTraceIdGenerator:
    def test_ids_are_fingerprint_prefixed_ordinals(self):
        ids = TraceIdGenerator(seed=7)
        assert ids.mint("abcdef1234567890") == "abcdef12-7-000000"
        assert ids.mint("abcdef1234567890") == "abcdef12-7-000001"
        assert ids.mint("ffff") == "ffff-7-000002"

    def test_empty_fingerprint_gets_anon_prefix(self):
        assert TraceIdGenerator().mint() == "anon-0-000000"

    def test_same_seed_same_stream(self):
        one = [TraceIdGenerator(seed=3).mint("aa") for _ in range(4)]
        other = [TraceIdGenerator(seed=3).mint("aa") for _ in range(4)]
        # Fresh generators replay identically; a different seed does not.
        assert one == other
        assert TraceIdGenerator(seed=4).mint("aa") not in one


class TestValidateEvent:
    def make_event(self, **overrides):
        event = {name: None for name in EVENT_FIELDS}
        event.update(
            v=JOURNAL_SCHEMA_VERSION, seq=0, kind="request.submitted"
        )
        event.update(overrides)
        return event

    def test_valid_event_passes(self):
        validate_event(self.make_event())

    def test_non_mapping_rejected(self):
        with pytest.raises(JournalError, match="must be an object"):
            validate_event(["not", "an", "event"])

    def test_unknown_field_rejected(self):
        event = self.make_event()
        event["bogus"] = 1
        with pytest.raises(JournalError, match="unknown fields"):
            validate_event(event)

    def test_missing_field_rejected(self):
        event = self.make_event()
        del event["tenant"]
        with pytest.raises(JournalError, match="missing fields"):
            validate_event(event)

    def test_wrong_version_rejected(self):
        with pytest.raises(JournalError, match="schema version"):
            validate_event(self.make_event(v=99))

    def test_unknown_kind_rejected(self):
        with pytest.raises(JournalError, match="unknown event kind"):
            validate_event(self.make_event(kind="request.vanished"))

    def test_negative_seq_rejected(self):
        with pytest.raises(JournalError, match="'seq'"):
            validate_event(self.make_event(seq=-1))

    def test_non_string_optional_field_rejected(self):
        with pytest.raises(JournalError, match="'tenant'"):
            validate_event(self.make_event(tenant=42))

    def test_bool_attempt_rejected(self):
        with pytest.raises(JournalError, match="'attempt'"):
            validate_event(self.make_event(attempt=True))

    def test_non_mapping_detail_rejected(self):
        with pytest.raises(JournalError, match="'detail'"):
            validate_event(self.make_event(detail=[1, 2]))


class TestJournal:
    def test_emit_returns_fixed_shape_events(self):
        journal = TelemetryJournal()
        event = journal.emit("request.submitted", "id-0", fingerprint="fp")
        assert set(event) == set(EVENT_FIELDS)
        assert event["seq"] == 0
        assert event["trace_id"] == "id-0"
        assert event["tenant"] is None

    def test_emit_gates_bad_kind_and_types(self):
        journal = TelemetryJournal()
        with pytest.raises(JournalError, match="unknown event kind"):
            journal.emit("not.a.kind", "id-0")
        with pytest.raises(JournalError, match="'tenant'"):
            journal.emit("request.submitted", "id-0", tenant=7)
        with pytest.raises(JournalError, match="'attempt'"):
            journal.emit("solve.attempt", "id-0", attempt=-1)
        with pytest.raises(JournalError, match="'detail'"):
            journal.emit("request.submitted", "id-0", detail="oops")
        # Nothing landed: the gate rejects before the buffer mutates.
        assert len(journal) == 0
        assert journal.total_events == 0

    def test_every_kind_is_emittable(self):
        journal = TelemetryJournal()
        for kind in EVENT_KINDS:
            journal.emit(kind, "id-0")
        assert [e["kind"] for e in journal.events()] == list(EVENT_KINDS)

    def test_ring_buffer_drops_oldest_but_seq_keeps_rising(self):
        journal = TelemetryJournal(capacity=3)
        for index in range(5):
            journal.emit("request.submitted", f"id-{index}")
        events = journal.events()
        assert len(events) == 3
        assert [e["seq"] for e in events] == [2, 3, 4]
        assert journal.dropped == 2
        assert journal.total_events == 5

    def test_invalid_capacity_rejected(self):
        with pytest.raises(JournalError):
            TelemetryJournal(capacity=0)

    def test_dumps_is_canonical_and_byte_stable(self):
        def build():
            journal = TelemetryJournal()
            journal.emit("request.submitted", "id-0", tenant="t", fingerprint="fp")
            journal.emit(
                "request.resolved", "id-0", outcome="served", tier="fresh"
            )
            return journal.dumps()

        assert build() == build()
        lines = build().splitlines()
        assert len(lines) == 2
        # Canonical rendering: sorted keys, no whitespace.
        assert lines[0] == event_line(json.loads(lines[0]))

    def test_write_and_read_round_trip(self, tmp_path):
        journal = TelemetryJournal()
        journal.emit("request.submitted", "id-0")
        journal.emit("request.resolved", "id-0", outcome="served")
        path = journal.write(tmp_path / "sub" / "telemetry.jsonl")
        assert TelemetryJournal.read(path) == journal.events()

    def test_sink_streams_every_event(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with TelemetryJournal(sink=path) as journal:
            journal.emit("request.submitted", "id-0")
            journal.emit("request.resolved", "id-0", outcome="served")
        assert TelemetryJournal.read(path) == journal.events()

    def test_validate_journal_rejects_non_increasing_seq(self):
        journal = TelemetryJournal()
        a = journal.emit("request.submitted", "id-0")
        b = journal.emit("request.resolved", "id-0", outcome="served")
        assert validate_journal([a, b]) == 2
        with pytest.raises(JournalError, match="not increasing"):
            validate_journal([b, a])

    def test_validate_journal_reads_files(self, tmp_path):
        journal = TelemetryJournal()
        journal.emit("request.submitted", "id-0")
        path = journal.write(tmp_path / "telemetry.jsonl")
        assert validate_journal(path) == 1
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(JournalError, match="invalid JSON"):
            validate_journal(path)


class TestReconstruction:
    def chaos_stream(self):
        """A small hand-built stream: a retry, a coalesce, a store fault."""
        journal = TelemetryJournal()
        journal.emit("request.submitted", "a-0", tenant="t0", fingerprint="fa")
        journal.emit("request.enqueued", "a-0", tenant="t0")
        journal.emit("solve.attempt", "a-0", attempt=0)
        journal.emit("fault.injected", "a-0", fault="planner_error", attempt=0)
        journal.emit("solve.retry", "a-0", attempt=1)
        journal.emit("solve.attempt", "a-0", attempt=1)
        journal.emit("request.submitted", "b-1", tenant="t1", fingerprint="fa")
        journal.emit("request.coalesced", "b-1", tenant="t1", leader="a-0")
        journal.emit(
            "request.resolved", "a-0", outcome="served", tier="fresh", attempt=2
        )
        journal.emit("request.resolved", "b-1", outcome="served", tier="fresh")
        journal.emit("fault.injected", None, fault="persist_error")
        journal.emit("cache.quarantined", None, fingerprint="fa")
        return journal.events()

    def test_lifecycles_fold_per_trace_id(self):
        lifecycles = reconstruct_requests(self.chaos_stream())
        assert set(lifecycles) == {"a-0", "b-1"}
        leader = lifecycles["a-0"]
        assert leader.tenant == "t0"
        assert leader.attempts == 2
        assert leader.retries == 1
        assert leader.faults == ["planner_error"]
        assert leader.outcome == "served"
        assert leader.tier == "fresh"
        assert leader.complete
        follower = lifecycles["b-1"]
        assert follower.leader == "a-0"
        assert follower.attempts == 0
        assert follower.complete

    def test_unattributed_events_are_store_scoped(self):
        unattributed = unattributed_events(self.chaos_stream())
        assert [e["kind"] for e in unattributed] == [
            "fault.injected",
            "cache.quarantined",
        ]

    def test_attribution_report_census(self):
        report = attribution_report(self.chaos_stream())
        assert report["requests"] == 2
        assert report["complete"] == 2
        assert report["orphan_requests"] == 0
        assert report["orphan_events"] == 0
        assert report["outcomes"] == {"served": 2}
        assert report["faults"] == {"planner_error": 1}
        assert report["retries"] == 1
        assert report["unattributed"] == {
            "cache.quarantined": 1,
            "persist_error": 1,
        }

    def test_orphan_lifecycles_are_counted(self):
        journal = TelemetryJournal()
        journal.emit("solve.attempt", "ghost-9", attempt=0)
        report = attribution_report(journal.events())
        assert report["orphan_requests"] == 1
        assert report["orphan_events"] == 1
        assert report["complete"] == 0
