"""Tests for service stats: latency edge cases and the registry export."""

import pytest

from repro.obs import MetricsRegistry
from repro.service import OUTCOME_COALESCED, OUTCOME_HIT, OUTCOME_MISS
from repro.service.stats import LatencySummary, ServiceStats


class TestLatencySummary:
    def test_empty_is_all_zeros(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean == summary.p50 == summary.p95 == summary.max == 0.0

    def test_single_sample_is_its_own_distribution(self):
        summary = LatencySummary.from_samples([0.25])
        assert summary.count == 1
        assert summary.mean == 0.25
        assert summary.p50 == 0.25
        assert summary.p95 == 0.25
        assert summary.max == 0.25

    def test_two_samples_interpolate(self):
        summary = LatencySummary.from_samples([0.0, 1.0])
        assert summary.count == 2
        assert summary.mean == pytest.approx(0.5)
        assert summary.p50 == pytest.approx(0.5)
        assert summary.p95 == pytest.approx(0.95)
        assert summary.max == 1.0

    def test_unsorted_input_handled(self):
        summary = LatencySummary.from_samples([3.0, 1.0, 2.0])
        assert summary.p50 == pytest.approx(2.0)
        assert summary.max == 3.0


class TestServiceStats:
    def make_stats(self) -> ServiceStats:
        stats = ServiceStats(clock=iter([0.0, 10.0] + [10.0] * 50).__next__)
        stats.record(OUTCOME_MISS, 0.100)
        stats.record(OUTCOME_HIT, 0.001)
        stats.record(OUTCOME_HIT, 0.003)
        stats.record(OUTCOME_COALESCED, 0.050)
        stats.record_error()
        return stats

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            ServiceStats().record("bogus", 1.0)

    def test_aggregates(self):
        stats = self.make_stats()
        assert stats.total_requests == 4
        assert stats.errors == 1
        assert stats.hit_rate == pytest.approx(3 / 4)
        assert stats.throughput == pytest.approx(4 / 10.0)

    def test_zero_requests_and_zero_elapsed_are_safe(self):
        stats = ServiceStats(clock=iter([5.0] + [5.0] * 20).__next__)
        assert stats.hit_rate == 0.0
        assert stats.throughput == 0.0
        assert stats.overall_latency().count == 0

    def test_single_request_percentiles_well_defined(self):
        stats = ServiceStats()
        stats.record(OUTCOME_MISS, 0.2)
        summary = stats.latency(OUTCOME_MISS)
        assert summary.p50 == 0.2
        assert summary.p95 == 0.2
        metrics = stats.to_metrics()
        assert metrics["latency_p50"].value == pytest.approx(200.0)
        assert metrics["latency_p95"].value == pytest.approx(200.0)

    def test_to_registry_uses_canonical_names(self):
        stats = self.make_stats()
        registry = stats.to_registry()
        assert registry.counter_value("service.requests") == 4
        assert registry.counter_value("service.cache", outcome=OUTCOME_HIT) == 2
        assert registry.counter_value("service.cache", outcome=OUTCOME_MISS) == 1
        assert (
            registry.counter_value("service.cache", outcome=OUTCOME_COALESCED) == 1
        )
        assert registry.counter_value("service.errors") == 1
        assert registry.gauge_value("service.hit_rate") == pytest.approx(3 / 4)
        overall = registry.histogram_summary("service.latency_seconds")
        assert overall.count == 4
        per_hit = registry.histogram_summary(
            "service.latency_seconds", outcome=OUTCOME_HIT
        )
        assert per_hit.count == 2
        assert per_hit.max == pytest.approx(0.003)

    def test_to_registry_fills_a_caller_registry(self):
        stats = self.make_stats()
        registry = MetricsRegistry()
        returned = stats.to_registry(registry)
        assert returned is registry
        assert registry.counter_value("service.requests") == 4

    def test_to_metrics_keeps_the_legacy_key_set(self):
        stats = self.make_stats()
        metrics = stats.to_metrics(prefix="service.")
        assert set(metrics) == {
            "service.requests",
            "service.hit_rate",
            "service.errors",
            "service.throughput",
            "service.latency_p50",
            "service.latency_p95",
            "service.latency_p99",
        }
        assert metrics["service.requests"].value == 4
        assert metrics["service.requests"].gated
        assert metrics["service.hit_rate"].higher_is_better
        assert metrics["service.errors"].regression_threshold == 0.0
        assert not metrics["service.throughput"].gated  # machine-dependent
        assert not metrics["service.latency_p50"].gated

    def test_to_metrics_values_match_direct_aggregates(self):
        stats = self.make_stats()
        metrics = stats.to_metrics()
        overall = stats.overall_latency()
        assert metrics["hit_rate"].value == pytest.approx(stats.hit_rate)
        assert metrics["latency_p50"].value == pytest.approx(overall.p50 * 1e3)
        assert metrics["latency_p95"].value == pytest.approx(overall.p95 * 1e3)

    def test_as_dict_and_render(self):
        stats = self.make_stats()
        data = stats.as_dict()
        assert data["requests"] == 4
        assert data["hits"] == 2
        assert data["errors"] == 1
        text = stats.render()
        assert "hit rate" in text
        assert "latency hit" in text
