"""Tests for the Spindle-Optimus baseline (task-level marginal-gain allocation)."""

import pytest

from repro.baselines.optimus import SpindleOptimusSystem
from tests.conftest import make_chain_task


@pytest.fixture
def system(two_island_cluster):
    return SpindleOptimusSystem(two_island_cluster)


@pytest.fixture
def unbalanced_tasks():
    heavy = make_chain_task("heavy", {"vision": 6}, batch=16, hidden=512, seq_len=128)
    light = make_chain_task("light", {"motion": 2}, batch=8, hidden=128)
    return [heavy, light]


class TestAllocation:
    def test_every_task_gets_at_least_one_device(self, system, unbalanced_tasks):
        allocations = system.allocate(unbalanced_tasks, 8)
        assert set(allocations) == {"heavy", "light"}
        assert all(n >= 1 for n in allocations.values())
        assert sum(allocations.values()) <= 8

    def test_heavier_task_gets_more_devices(self, system, unbalanced_tasks):
        allocations = system.allocate(unbalanced_tasks, 8)
        assert allocations["heavy"] > allocations["light"]

    def test_marginal_gain_balances_completion_times(self, system, unbalanced_tasks):
        allocations = system.allocate(unbalanced_tasks, 8)
        heavy_time = system.task_completion_time(unbalanced_tasks[0], allocations["heavy"])
        light_time = system.task_completion_time(unbalanced_tasks[1], allocations["light"])
        # The greedy rule narrows the gap to well under the single-device ratio.
        single_ratio = system.task_completion_time(
            unbalanced_tasks[0], 1
        ) / system.task_completion_time(unbalanced_tasks[1], 1)
        assert heavy_time / light_time < single_ratio

    def test_completion_time_decreases_with_devices(self, system, unbalanced_tasks):
        task = unbalanced_tasks[0]
        times = [system.task_completion_time(task, n) for n in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_more_tasks_than_devices_split_into_rounds(self, single_island_cluster):
        system = SpindleOptimusSystem(single_island_cluster)
        tasks = [
            make_chain_task(f"t{i}", {"enc": 2}, batch=4, hidden=128) for i in range(10)
        ]
        rounds = system._split_into_rounds(tasks, single_island_cluster.num_devices)
        assert len(rounds) == 3
        assert sum(len(r) for r in rounds) == 10
        result = system.run_iteration(tasks)
        assert result.num_waves == 3


class TestEndToEnd:
    def test_iteration_result_structure(self, system, tiny_tasks):
        result = system.run_iteration(tiny_tasks)
        assert result.iteration_time > 0
        assert result.breakdown.send_recv == 0.0
        assert "task_allocations" in result.metadata

    def test_tasks_run_concurrently_on_disjoint_blocks(self, system, unbalanced_tasks):
        result = system.run_iteration(unbalanced_tasks)
        devices_by_task: dict[int, set[int]] = {}
        for seg in result.trace.segments:
            devices_by_task.setdefault(seg.metaop_index, set()).add(seg.device_id)
        # Compute time is the maximum task time, not the sum.
        individual = [
            system.task_completion_time(task, 1) for task in unbalanced_tasks
        ]
        assert result.breakdown.forward_backward < sum(individual)

    def test_rejects_empty_tasks(self, system):
        with pytest.raises(ValueError):
            system.run_iteration([])

    def test_capability_flags(self):
        assert SpindleOptimusSystem.capabilities.inter_task_aware
        assert not SpindleOptimusSystem.capabilities.intra_task_aware
