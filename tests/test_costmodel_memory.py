"""Unit tests for the memory model."""

import pytest

from repro.costmodel.memory import MemoryModel, MemoryModelConfig
from tests.conftest import make_layer_op


class TestMemoryModel:
    @pytest.fixture
    def model(self):
        return MemoryModel()

    @pytest.fixture
    def op(self):
        return make_layer_op("m", batch=8, seq_len=64, hidden=512)

    def test_parameter_state_is_multiple_of_param_bytes(self, model, op):
        state = model.parameter_state_bytes(op, n_devices=1)
        # 16 bytes of optimizer state per parameter vs 2 bytes of fp16 weight.
        assert state == pytest.approx(op.param_count * 16)

    def test_parameter_free_operator(self, model):
        loss = make_layer_op("loss", batch=8)
        loss.param_bytes = 0.0
        assert model.parameter_state_bytes(loss, 4) == 0.0

    def test_data_parallel_shards_optimizer_state(self, model, op):
        replicated = model.parameter_state_bytes(op, n_devices=1)
        sharded = model.parameter_state_bytes(op, n_devices=4)
        assert sharded < replicated
        # fp16 weights and gradients stay replicated, so at least 4 bytes/param.
        assert sharded >= op.param_count * 4

    def test_tensor_parallel_shards_everything(self, model):
        op = make_layer_op("tp", batch=2, hidden=512)
        wide = model.parameter_state_bytes(op, n_devices=8)  # dp=2, tp=4
        narrow = model.parameter_state_bytes(op, n_devices=2)
        assert wide < narrow

    def test_activation_memory_splits_across_devices(self, model, op):
        assert model.activation_bytes(op, 4) == pytest.approx(
            model.activation_bytes(op, 1) / 4
        )

    def test_operator_device_bytes_is_sum(self, model, op):
        total = model.operator_device_bytes(op, 2)
        assert total == pytest.approx(
            model.parameter_state_bytes(op, 2) + model.activation_bytes(op, 2)
        )

    def test_framework_overhead_configurable(self):
        model = MemoryModel(MemoryModelConfig(framework_overhead_bytes=123.0))
        assert model.framework_overhead() == 123.0

    def test_no_optimizer_sharding_option(self, op):
        model = MemoryModel(MemoryModelConfig(optimizer_shard_over_dp=False))
        assert model.parameter_state_bytes(op, 4) == pytest.approx(
            op.param_count * 16
        )

    def test_param_count_helper(self):
        assert MemoryModel.param_count(200.0) == 100.0
