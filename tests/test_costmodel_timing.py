"""Unit tests for the execution time model (the simulated cluster's physics)."""

import pytest

from repro.costmodel.timing import (
    ExecutionTimeModel,
    TimingModelConfig,
    data_parallel_imbalance,
    split_allocation,
)
from tests.conftest import make_layer_op


class TestSplitAllocation:
    def test_pure_data_parallel(self):
        split = split_allocation(batch_size=8, n_devices=4)
        assert split.data_parallel == 4
        assert split.tensor_parallel == 1
        assert split.world_size == 4

    def test_hybrid_beyond_batch(self):
        split = split_allocation(batch_size=8, n_devices=32)
        assert split.data_parallel == 8
        assert split.tensor_parallel == 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_allocation(0, 4)
        with pytest.raises(ValueError):
            split_allocation(4, 0)

    def test_imbalance_factor(self):
        assert data_parallel_imbalance(8, 4) == pytest.approx(1.0)
        assert data_parallel_imbalance(8, 3) == pytest.approx(3 * 3 / 8)
        with pytest.raises(ValueError):
            data_parallel_imbalance(8, 0)


class TestExecutionTimeModel:
    @pytest.fixture
    def model(self, cluster16):
        return ExecutionTimeModel(cluster16)

    @pytest.fixture
    def heavy_op(self):
        return make_layer_op("heavy", batch=32, seq_len=256, hidden=1024)

    @pytest.fixture
    def light_op(self):
        return make_layer_op("light", batch=8, seq_len=32, hidden=256)

    def test_time_positive_and_monotone_in_devices(self, model, heavy_op):
        times = [model.operator_time(heavy_op, n) for n in (1, 2, 4, 8, 16)]
        assert all(t > 0 for t in times)
        for slower, faster in zip(times, times[1:]):
            assert faster <= slower + 1e-12

    def test_invalid_device_count(self, model, heavy_op):
        with pytest.raises(ValueError):
            model.operator_time(heavy_op, 0)

    def test_device_count_clamped_to_cluster(self, model, heavy_op):
        at_cluster = model.operator_time(heavy_op, 16)
        beyond = model.operator_time(heavy_op, 64)
        assert beyond == pytest.approx(at_cluster)

    def test_backward_multiplies_cost(self, model, heavy_op):
        fwd = model.operator_time(heavy_op, 4, include_backward=False)
        fwd_bwd = model.operator_time(heavy_op, 4, include_backward=True)
        assert fwd_bwd > 2 * fwd

    def test_heavy_ops_scale_better_than_light_ops(self, model, heavy_op, light_op):
        heavy_speedup = model.operator_time(heavy_op, 1) / model.operator_time(heavy_op, 16)
        light_speedup = model.operator_time(light_op, 1) / model.operator_time(light_op, 16)
        assert heavy_speedup > light_speedup
        assert heavy_speedup > 6.0
        assert light_speedup < 6.0

    def test_launch_overhead_is_a_floor(self, model, light_op):
        config = model.config
        floor = config.kernel_launch_overhead * 2
        assert model.operator_time(light_op, 16) >= floor

    def test_tensor_parallel_adds_communication(self, cluster16):
        model = ExecutionTimeModel(cluster16)
        op = make_layer_op("tp", batch=4, seq_len=128, hidden=512)
        # Eight devices on a batch of four forces TP=2: the extra collective
        # removes most (possibly all) of the benefit of the extra devices.
        t4 = model.operator_time(op, 4)
        t8 = model.operator_time(op, 8)
        assert t4 / t8 < 1.3

    def test_operators_time_sums_chain(self, model, heavy_op, light_op):
        total = model.operators_time([heavy_op, light_op], 4)
        assert total == pytest.approx(
            model.operator_time(heavy_op, 4) + model.operator_time(light_op, 4)
        )

    def test_achieved_flops_bounded_by_peak(self, model, heavy_op):
        for n in (1, 2, 4, 8, 16):
            achieved = model.achieved_flops_per_second(heavy_op, n)
            assert 0 < achieved <= n * model.cluster.device_spec.peak_flops

    def test_custom_config_changes_behaviour(self, cluster16, light_op):
        default = ExecutionTimeModel(cluster16)
        overhead_free = ExecutionTimeModel(
            cluster16, TimingModelConfig(kernel_launch_overhead=0.0)
        )
        assert overhead_free.operator_time(light_op, 16) < default.operator_time(
            light_op, 16
        )
