"""Unit tests for the runtime engine (§3.6) and its four steps."""

import pytest

from repro.core.planner import ExecutionPlanner
from repro.runtime.engine import RuntimeEngine
from repro.runtime.results import TimeBreakdown


@pytest.fixture
def plan(two_island_cluster, tiny_tasks):
    return ExecutionPlanner(two_island_cluster).plan(tiny_tasks)


@pytest.fixture
def engine(plan):
    return RuntimeEngine(plan)


class TestLocalization:
    def test_every_device_has_a_program(self, engine, plan):
        assert set(engine.local_programs) == set(range(plan.cluster.num_devices))

    def test_local_slices_match_placement(self, engine, plan):
        for wave in plan.waves:
            for entry in wave.entries:
                devices = plan.placement.devices_for(wave.index, entry.metaop_index)
                for device in devices:
                    program = engine.local_programs[device]
                    matching = [
                        s
                        for s in program.slices
                        if s.wave_index == wave.index
                        and s.metaop_index == entry.metaop_index
                    ]
                    assert len(matching) == 1
                    assert matching[0].num_operators == entry.layers

    def test_local_operator_names_are_real_operators(self, engine, plan):
        known = {
            op.name
            for metaop in plan.metagraph.metaops.values()
            for op in metaop.operators
        }
        for program in engine.local_programs.values():
            for local_slice in program.slices:
                assert set(local_slice.operator_names) <= known


class TestEngineComponents:
    def test_transmissions_built(self, engine):
        assert isinstance(engine.transmissions, list)

    def test_parameter_pool_built(self, engine):
        assert engine.parameter_pool.num_groups > 0


class TestTrainingStep:
    def test_run_iteration(self, engine):
        result = engine.run_iteration()
        assert result.iteration_time > 0
        assert isinstance(result.breakdown, TimeBreakdown)
        assert result.num_waves == len(engine.plan.waves)

    def test_run_many_iterations(self, engine):
        run = engine.run(num_iterations=5, planning_seconds=0.25)
        assert run.num_iterations == 5
        assert run.planning_seconds == 0.25
        assert run.total_time == pytest.approx(
            0.25 + 5 * run.iteration_results[0].iteration_time
        )
        assert run.mean_iteration_time == pytest.approx(
            run.iteration_results[0].iteration_time
        )

    def test_run_rejects_non_positive_iterations(self, engine):
        with pytest.raises(ValueError):
            engine.run(0)

    def test_breakdown_validation(self):
        with pytest.raises(ValueError):
            TimeBreakdown(forward_backward=-1.0, param_sync=0.0, send_recv=0.0)
        breakdown = TimeBreakdown(forward_backward=3.0, param_sync=1.0, send_recv=0.0)
        assert breakdown.total == 4.0
        assert breakdown.fraction("forward_backward") == pytest.approx(0.75)
