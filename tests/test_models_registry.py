"""Tests for the model registry (Tab. 1b metadata)."""

import pytest

from repro.models.registry import MODEL_REGISTRY, get_model_info, get_model_tasks


class TestRegistry:
    def test_three_workloads_registered(self):
        assert set(MODEL_REGISTRY) == {"multitask-clip", "ofasys", "qwen-val"}

    def test_lookup_is_case_insensitive(self):
        assert get_model_info("Multitask-CLIP").name == "Multitask-CLIP"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_info("clip-4")

    def test_tab1b_metadata(self):
        clip = get_model_info("multitask-clip")
        ofasys = get_model_info("ofasys")
        qwen = get_model_info("qwen-val")
        assert clip.max_tasks == 10 and clip.num_modalities == 6
        assert ofasys.max_tasks == 7 and ofasys.num_modalities == 6
        assert qwen.max_tasks == 3 and qwen.num_modalities == 3
        assert clip.cross_modal_module == "Contrastive Loss"
        assert ofasys.cross_modal_module == "Enc-Dec LLM"
        assert qwen.cross_modal_module == "Dec-only LLM"

    def test_get_model_tasks_defaults_to_all(self):
        assert len(get_model_tasks("multitask-clip")) == 10
        assert len(get_model_tasks("ofasys", 4)) == 4
        assert len(get_model_tasks("qwen-val", 3, size="30b")) == 3

    def test_parameter_count_ordering(self):
        clip = get_model_info("multitask-clip").parameter_count()
        ofasys = get_model_info("ofasys").parameter_count()
        qwen = get_model_info("qwen-val").parameter_count()
        assert ofasys < clip < qwen
