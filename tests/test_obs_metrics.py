"""Tests for the metrics registry: naming, aggregation, snapshots, export."""

import threading

import pytest

from repro.bench.result import Metric
from repro.obs import (
    MetricsRegistry,
    get_metrics,
    metric_key,
    percentile,
    split_metric_key,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestMetricKeys:
    def test_bare_name(self):
        assert metric_key("planner.solve_seconds") == "planner.solve_seconds"

    def test_labels_sorted_by_key(self):
        key = metric_key("service.cache", {"outcome": "hit", "node": 2})
        assert key == "service.cache{node=2,outcome=hit}"

    def test_split_is_the_inverse(self):
        name, labels = split_metric_key("service.cache{node=2,outcome=hit}")
        assert name == "service.cache"
        assert labels == {"node": "2", "outcome": "hit"}
        assert split_metric_key("plain") == ("plain", {})


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_interpolates_between_samples(self):
        ordered = [0.0, 10.0]
        assert percentile(ordered, 0.5) == pytest.approx(5.0)
        assert percentile(ordered, 0.95) == pytest.approx(9.5)

    def test_endpoints_exact(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert percentile(ordered, 0.0) == 1.0
        assert percentile(ordered, 1.0) == 4.0


class TestRecording:
    def test_counter_accumulates_per_label_set(self, registry):
        registry.inc("service.cache", outcome="hit")
        registry.inc("service.cache", outcome="hit")
        registry.inc("service.cache", outcome="miss")
        assert registry.counter_value("service.cache", outcome="hit") == 2
        assert registry.counter_value("service.cache", outcome="miss") == 1
        assert registry.counter_value("service.cache", outcome="coalesced") == 0

    def test_gauge_keeps_latest(self, registry):
        registry.gauge("service.hit_rate", 0.25)
        registry.gauge("service.hit_rate", 0.75)
        assert registry.gauge_value("service.hit_rate") == 0.75

    def test_histogram_summary(self, registry):
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("planner.solve_seconds", value, stage="allocation")
        summary = registry.histogram_summary(
            "planner.solve_seconds", stage="allocation"
        )
        assert summary.count == 4
        assert summary.total == pytest.approx(10.0)
        assert summary.min == 1.0 and summary.max == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.p50 == pytest.approx(2.5)

    def test_histogram_caps_raw_samples_but_not_aggregates(self):
        registry = MetricsRegistry(max_samples=8)
        for value in range(100):
            registry.observe("x_seconds", float(value))
        summary = registry.histogram_summary("x_seconds")
        assert summary.count == 100
        assert summary.total == pytest.approx(sum(range(100)))
        assert summary.max == 99.0

    def test_invalid_max_samples_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_samples=0)

    def test_thread_safety_of_inc(self, registry):
        def worker() -> None:
            for _ in range(1000):
                registry.inc("hits")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert registry.counter_value("hits") == 4000


class TestSnapshotsAndDiff:
    def test_snapshot_is_frozen(self, registry):
        registry.inc("n")
        snap = registry.snapshot()
        registry.inc("n")
        assert snap.counters["n"] == 1
        assert registry.counter_value("n") == 2

    def test_diff_meters_one_region(self, registry):
        registry.inc("service.cache", 5, outcome="hit")
        registry.observe("simulator.wave_seconds", 1.0)
        before = registry.snapshot()
        registry.inc("service.cache", 2, outcome="hit")
        registry.inc("service.cache", outcome="miss")
        registry.observe("simulator.wave_seconds", 3.0)
        registry.observe("simulator.wave_seconds", 5.0)
        registry.gauge("service.hit_rate", 0.5)
        delta = registry.snapshot().diff(before)
        assert delta.counters == {
            "service.cache{outcome=hit}": 2,
            "service.cache{outcome=miss}": 1,
        }
        wave = delta.histograms["simulator.wave_seconds"]
        assert wave.count == 2
        assert wave.total == pytest.approx(8.0)
        assert wave.mean == pytest.approx(4.0)
        assert delta.gauges["service.hit_rate"] == 0.5

    def test_diff_drops_unchanged_series(self, registry):
        registry.inc("stable")
        registry.observe("h_seconds", 1.0)
        before = registry.snapshot()
        delta = registry.snapshot().diff(before)
        assert delta.counters == {}
        assert delta.histograms == {}

    def test_as_dict_is_json_shaped(self, registry):
        registry.inc("c", outcome="hit")
        registry.gauge("g", 1.5)
        registry.observe("h_seconds", 2.0)
        data = registry.snapshot().as_dict()
        assert data["counters"] == {"c{outcome=hit}": 1.0}
        assert data["gauges"] == {"g": 1.5}
        assert data["histograms"]["h_seconds"]["count"] == 1

    def test_clear(self, registry):
        registry.inc("c")
        registry.gauge("g", 1.0)
        registry.observe("h", 1.0)
        registry.clear()
        snap = registry.snapshot()
        assert not snap.counters and not snap.gauges and not snap.histograms


class TestBenchExport:
    def test_counters_and_gauges_export_values(self, registry):
        registry.inc("service.cache", 3, outcome="hit")
        registry.gauge("service.hit_rate", 0.75)
        metrics = registry.to_bench_metrics()
        assert metrics["service.cache{outcome=hit}"].value == 3
        assert metrics["service.hit_rate"].value == 0.75

    def test_seconds_histograms_export_count_and_percentiles(self, registry):
        registry.observe("planner.solve_seconds", 0.010, stage="allocation")
        registry.observe("planner.solve_seconds", 0.030, stage="allocation")
        metrics = registry.to_bench_metrics(prefix="obs.")
        key = "obs.planner.solve_seconds{stage=allocation}"
        assert metrics[f"{key}.count"].value == 2
        assert metrics[f"{key}.p50_ms"].value == pytest.approx(20.0)
        assert metrics[f"{key}.p95_ms"].unit == "ms"

    def test_non_seconds_histograms_export_count_only(self, registry):
        registry.observe("queue.depth", 4.0)
        metrics = registry.to_bench_metrics()
        assert "queue.depth.count" in metrics
        assert "queue.depth.p50_ms" not in metrics

    def test_informational_by_default_gated_on_request(self, registry):
        registry.inc("service.errors")
        default = registry.to_bench_metrics()["service.errors"]
        assert not default.gated
        gated = registry.to_bench_metrics(gated=["service.errors"])
        assert gated["service.errors"].gated
        assert isinstance(gated["service.errors"], Metric)

    def test_to_bench_result_round_trips_schema(self, registry):
        registry.inc("service.requests", 7)
        result = registry.to_bench_result("obs_smoke", figure="fig8")
        payload = result.to_dict()
        assert payload["name"] == "obs_smoke"
        assert payload["metrics"]["service.requests"]["value"] == 7
        assert "obs" in payload["tags"]


class TestRender:
    def test_empty_registry_renders_placeholder(self, registry):
        assert registry.render() == "(no metrics recorded)"

    def test_render_contains_all_sections(self, registry):
        registry.inc("c")
        registry.gauge("g", 2.0)
        registry.observe("h_seconds", 0.5)
        text = registry.render()
        assert "counters:" in text and "gauges:" in text
        assert "histograms:" in text and "h_seconds" in text


class TestConcurrentWriters:
    def test_barrier_synced_workers_keep_exact_aggregates(self):
        """4 workers hammer one histogram + counter through the same barrier.

        Label kwargs arrive in a different order per worker, so the test also
        proves canonicalization under contention: every write lands on the
        same key, and count/total stay exact even past the sample reservoir.
        """
        registry = MetricsRegistry(max_samples=16)
        barrier = threading.Barrier(4)
        per_worker = 500
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                for step in range(per_worker):
                    if index % 2 == 0:
                        registry.observe(
                            "solve_seconds", 0.001, stage="alloc", node=1
                        )
                        registry.inc("requests", outcome="hit", tier="cache")
                    else:
                        registry.observe(
                            "solve_seconds", 0.001, node=1, stage="alloc"
                        )
                        registry.inc("requests", tier="cache", outcome="hit")
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors

        snap = registry.snapshot()
        # Canonical label ordering: exactly one series per metric.
        assert list(snap.histograms) == ["solve_seconds{node=1,stage=alloc}"]
        assert list(snap.counters) == ["requests{outcome=hit,tier=cache}"]
        summary = registry.histogram_summary("solve_seconds", stage="alloc", node=1)
        assert summary.count == 4 * per_worker
        assert summary.total == pytest.approx(4 * per_worker * 0.001)
        assert (
            registry.counter_value("requests", outcome="hit", tier="cache")
            == 4 * per_worker
        )


def test_global_registry_is_a_singleton():
    assert get_metrics() is get_metrics()
