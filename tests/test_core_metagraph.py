"""Unit tests for MetaOps, MetaGraph and MetaLevel assignment."""

import pytest

from repro.core.metagraph import MetaGraph, MetaGraphError, MetaOp
from tests.conftest import make_layer_op


def metaop(index, num_ops=3, task="t", op_type="text_layer", batch=8):
    ops = [
        make_layer_op(f"{task}.{op_type}.{index}.{i}", task=task, op_type=op_type, batch=batch)
        for i in range(num_ops)
    ]
    return MetaOp(index=index, operators=ops)


class TestMetaOp:
    def test_aggregates(self):
        m = metaop(0, num_ops=4)
        assert m.num_operators == 4
        assert m.flops_per_operator == m.representative.flops
        assert m.total_flops == pytest.approx(4 * m.representative.flops)
        assert m.param_bytes == pytest.approx(4 * m.representative.param_bytes)
        assert m.batch_size == 8
        assert m.op_type == "text_layer"

    def test_name_spans_first_and_last(self):
        m = metaop(0, num_ops=3)
        assert ".." in m.name
        single = metaop(1, num_ops=1)
        assert ".." not in single.name

    def test_rejects_empty(self):
        with pytest.raises(MetaGraphError):
            MetaOp(index=0, operators=[])

    def test_rejects_mixed_workloads(self):
        ops = [
            make_layer_op("a", op_type="text_layer"),
            make_layer_op("b", op_type="vision_layer"),
        ]
        with pytest.raises(MetaGraphError):
            MetaOp(index=0, operators=ops)

    def test_operator_slice(self):
        m = metaop(0, num_ops=5)
        middle = m.operator_slice(1, 3)
        assert [op.name for op in middle] == [op.name for op in m.operators[1:4]]
        with pytest.raises(MetaGraphError):
            m.operator_slice(3, 4)
        with pytest.raises(MetaGraphError):
            m.operator_slice(-1, 2)


class TestMetaGraph:
    def build_diamond(self):
        """a -> {b, c} -> d MetaGraph."""
        graph = MetaGraph()
        for i in range(4):
            graph.add_metaop(metaop(i, op_type=f"type{i}"))
        graph.add_edge(0, 1, 10.0)
        graph.add_edge(0, 2, 20.0)
        graph.add_edge(1, 3, 30.0)
        graph.add_edge(2, 3, 40.0)
        return graph

    def test_add_and_lookup(self):
        graph = self.build_diamond()
        assert graph.num_metaops == 4
        assert graph.num_operators == 12
        assert graph.metaop(2).index == 2
        with pytest.raises(MetaGraphError):
            graph.metaop(9)

    def test_duplicate_and_invalid_edges(self):
        graph = MetaGraph()
        graph.add_metaop(metaop(0))
        with pytest.raises(MetaGraphError):
            graph.add_metaop(metaop(0))
        with pytest.raises(MetaGraphError):
            graph.add_edge(0, 0, 1.0)
        with pytest.raises(MetaGraphError):
            graph.add_edge(0, 5, 1.0)

    def test_parallel_edges_accumulate_volume(self):
        graph = MetaGraph()
        graph.add_metaop(metaop(0))
        graph.add_metaop(metaop(1, op_type="other"))
        graph.add_edge(0, 1, 10.0)
        graph.add_edge(0, 1, 5.0)
        assert graph.edge_volume(0, 1) == 15.0

    def test_neighbors(self):
        graph = self.build_diamond()
        assert set(graph.successors(0)) == {1, 2}
        assert set(graph.predecessors(3)) == {1, 2}
        assert graph.edge_volume(2, 3) == 40.0
        assert graph.edge_volume(3, 2) == 0.0

    def test_level_assignment(self):
        graph = self.build_diamond()
        graph.assign_levels()
        levels = {i: graph.metaop(i).level for i in range(4)}
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2}
        assert graph.num_levels == 3
        assert graph.levels() == [[0], [1, 2], [3]]
        assert [m.index for m in graph.metaops_at_level(1)] == [1, 2]

    def test_levels_require_assignment(self):
        graph = self.build_diamond()
        with pytest.raises(MetaGraphError):
            graph.levels()

    def test_same_level_metaops_are_independent(self):
        graph = self.build_diamond()
        graph.assign_levels()
        for (src, dst) in graph.edges:
            assert graph.metaop(src).level < graph.metaop(dst).level

    def test_cycle_detection(self):
        graph = MetaGraph()
        graph.add_metaop(metaop(0))
        graph.add_metaop(metaop(1, op_type="other"))
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 0, 1.0)
        with pytest.raises(MetaGraphError):
            graph.assign_levels()

    def test_tasks(self):
        graph = MetaGraph()
        graph.add_metaop(metaop(0, task="a"))
        graph.add_metaop(metaop(1, task="b", op_type="other"))
        assert graph.tasks() == ["a", "b"]
