"""Observability wired through the planner, service, elastic runner, simulator.

Covers the two quantitative guarantees the telemetry layer makes:

* with tracing **disabled**, instrumentation overhead on a planner solve is
  bounded well under 2%;
* under a **concurrent** plan-service worker pool, each thread's spans are
  well-nested (parents fully contain children, siblings never interleave) —
  the thread-local stack never crosses threads.
"""

import threading
import time

import pytest

from repro.cluster.topology import make_cluster
from repro.core.planner import ExecutionPlanner
from repro.obs import SpanTracer, get_metrics, get_tracer
from repro.runtime.engine import RuntimeEngine
from repro.service import PlanService


@pytest.fixture(autouse=True)
def clean_global_obs():
    """Keep the process-wide tracer/registry pristine around each test."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.clear()
    yield
    tracer.clear()
    (tracer.enable if was_enabled else tracer.disable)()


@pytest.fixture
def cluster():
    return make_cluster(8, devices_per_node=4)


# ------------------------------------------------------------------- coverage
class TestSpanCoverage:
    def test_planner_emits_stage_spans_and_metrics(self, cluster, tiny_tasks):
        tracer = get_tracer()
        metrics = get_metrics()
        before = metrics.snapshot()
        with tracer.capture():
            ExecutionPlanner(cluster).plan(tiny_tasks)
        names = [r.name for r in tracer.records()]
        assert "planner.plan" in names
        for stage in (
            "graph_contraction",
            "scalability_estimation",
            "resource_allocation",
            "wavefront_scheduling",
            "device_placement",
        ):
            assert f"planner.{stage}" in names
        delta = metrics.snapshot().diff(before)
        stage_keys = [
            key
            for key in delta.histograms
            if key.startswith("planner.solve_seconds{stage=")
        ]
        assert len(stage_keys) == 5

    def test_stage_spans_nest_under_the_solve_span(self, cluster, tiny_tasks):
        tracer = get_tracer()
        with tracer.capture():
            ExecutionPlanner(cluster).plan(tiny_tasks)
        records = {r.name: r for r in tracer.records()}
        solve = records["planner.plan"]
        for stage in ("graph_contraction", "device_placement"):
            assert records[f"planner.{stage}"].parent_id == solve.span_id

    def test_stage_seconds_report_matches_span_durations(
        self, cluster, tiny_tasks
    ):
        """Satellite 1: the report number and the span are one measurement."""
        tracer = get_tracer()
        with tracer.capture():
            plan = ExecutionPlanner(cluster).plan(tiny_tasks)
        spans = {r.name: r for r in tracer.records()}
        for stage, seconds in plan.report.stage_seconds.items():
            assert spans[f"planner.{stage}"].duration == seconds

    def test_simulator_emits_wave_spans_and_simulated_durations(
        self, cluster, tiny_tasks
    ):
        plan = ExecutionPlanner(cluster).plan(tiny_tasks)
        tracer = get_tracer()
        metrics = get_metrics()
        before = metrics.snapshot()
        with tracer.capture():
            result = RuntimeEngine(plan).run_iteration()
        wave_spans = [r for r in tracer.records() if r.name == "simulator.wave"]
        assert len(wave_spans) == result.num_waves
        delta = metrics.snapshot().diff(before)
        waves = delta.histograms["simulator.wave_seconds"]
        assert waves.count == result.num_waves
        # Observations are *simulated* seconds: their sum is the iteration's
        # compute + boundary time, not the wall clock of simulating it.
        expected = result.breakdown.forward_backward + result.breakdown.send_recv
        assert waves.total == pytest.approx(expected, rel=1e-9)

    def test_service_emits_lifecycle_spans_and_cache_counters(
        self, cluster, tiny_tasks
    ):
        tracer = get_tracer()
        metrics = get_metrics()
        before = metrics.snapshot()
        with tracer.capture():
            with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
                service.plan(tiny_tasks, timeout=30.0)
                service.plan(tiny_tasks, timeout=30.0)
        names = [r.name for r in tracer.records()]
        assert names.count("service.submit") == 2
        assert names.count("service.solve") == 1  # second request was a hit
        assert "service.cache_put" in names
        assert "planner.plan" in names
        delta = metrics.snapshot().diff(before)
        assert delta.counters["service.cache{outcome=miss}"] == 1
        assert delta.counters["service.cache{outcome=hit}"] == 1

    def test_elastic_runner_emits_replan_spans_and_metrics(self):
        from repro.cluster.device import A800_SPEC
        from repro.elastic import (
            ClusterEvent,
            ElasticScenario,
            ElasticTrainingRunner,
            EventTimeline,
        )
        from repro.elastic.events import DEVICE_FAILURE
        from tests.conftest import make_chain_task

        tasks = [make_chain_task("audio_task", {"audio": 2, "lm": 2}, batch=8)]
        scenario = ElasticScenario(
            num_nodes=2,
            devices_per_node=4,
            device_spec=A800_SPEC,
            timeline=EventTimeline(
                [ClusterEvent(DEVICE_FAILURE, at_iteration=10, node=0, device=1)]
            ),
            total_iterations=30,
            name="obs-test",
        )
        tracer = get_tracer()
        metrics = get_metrics()
        before = metrics.snapshot()
        with tracer.capture():
            ElasticTrainingRunner(scenario).run(tasks)
        names = [r.name for r in tracer.records()]
        assert "elastic.replan" in names
        assert "elastic.event_group" in names
        delta = metrics.snapshot().diff(before)
        replans = [
            key
            for key in delta.histograms
            if key.startswith("elastic.replan_seconds{policy=")
        ]
        assert replans, "no replan duration histogram recorded"
        planned = delta.counters.get("elastic.replans{outcome=planned}", 0)
        assert planned >= 2  # the initial plan and the post-failure replan


# ------------------------------------------------------------- overhead bound
class TestDisabledOverhead:
    def test_disabled_tracing_costs_under_two_percent_of_a_solve(
        self, cluster, tiny_tasks
    ):
        """Satellite 3: the no-op path is far below the 2% budget.

        Rather than racing two noisy wall-clock measurements against each
        other, bound the overhead analytically: (cost of one disabled span
        entry/exit) x (spans a solve executes) must be under 2% of the solve
        itself.  The margin is enormous — a disabled span is a singleton
        return plus a no-op context manager — so this stays robust on loaded
        CI machines.
        """
        tracer = get_tracer()
        assert not tracer.enabled

        # Per-call cost of the disabled path, amortised over many calls.
        calls = 20_000
        start = time.perf_counter()
        for _ in range(calls):
            with tracer.span("overhead.probe", category="planner", stage="x"):
                pass
        per_span = (time.perf_counter() - start) / calls

        # How many spans one solve executes (count them on a scratch tracer
        # substituted for real tracing so the measured solve stays untouched).
        counter = SpanTracer(enabled=True)
        planner = ExecutionPlanner(cluster)
        import repro.core.planner as planner_module

        original = planner_module.get_tracer
        planner_module.get_tracer = lambda: counter
        try:
            planner.plan(tiny_tasks)
        finally:
            planner_module.get_tracer = original
        spans_per_solve = len(counter)
        assert spans_per_solve >= 6  # the pipeline span plus five stages

        # The solve itself, with tracing disabled (best of three).
        solve_seconds = min(
            _timed_solve(ExecutionPlanner(cluster), tiny_tasks) for _ in range(3)
        )

        overhead = per_span * spans_per_solve
        assert overhead < 0.02 * solve_seconds, (
            f"disabled-tracer overhead {overhead * 1e6:.1f}us exceeds 2% of a "
            f"{solve_seconds * 1e3:.2f}ms solve"
        )


def _timed_solve(planner, tasks) -> float:
    start = time.perf_counter()
    planner.plan(tasks)
    return time.perf_counter() - start


# --------------------------------------------------------- concurrent nesting
class BarrierPlanner(ExecutionPlanner):
    """Planner that parks the first ``parties`` solves on a shared barrier.

    Forces the worker pool to actually overlap: no worker can finish its
    first solve until ``parties`` workers are inside one.
    """

    def __init__(self, cluster, parties: int) -> None:
        super().__init__(cluster)
        self._barrier = threading.Barrier(parties)
        self._released = threading.Event()

    def plan(self, workload, **kwargs):
        if not self._released.is_set():
            try:
                self._barrier.wait(timeout=10.0)
                self._released.set()
            except threading.BrokenBarrierError:
                pass  # later solves after the overlap window; just proceed
        return super().plan(workload, **kwargs)


class TestConcurrentNesting:
    def test_worker_pool_spans_are_well_nested_per_thread(
        self, cluster, chain_task_factory
    ):
        """Satellite 3: >=4 workers, per-thread spans nest without interleave."""
        workloads = [
            [
                chain_task_factory(
                    f"task{i}",
                    {"enc": 2 + i % 3, "lm": 2},
                    batch=4 + i,
                )
            ]
            for i in range(8)
        ]
        tracer = get_tracer()
        planner = BarrierPlanner(cluster, parties=4)
        with tracer.capture():
            # max_batch_size=1 stops one worker draining the whole queue in a
            # single batch; the barrier then parks four workers inside a solve
            # simultaneously, guaranteeing real overlap.
            with PlanService(planner, num_workers=4, max_batch_size=1) as service:
                futures = [service.submit(w) for w in workloads]
                for future in futures:
                    future.result(timeout=60.0)

        records = tracer.records()
        solves = [r for r in records if r.name == "service.solve"]
        assert len(solves) == 8
        worker_threads = {r.thread_id for r in solves}
        assert len(worker_threads) >= 2, "pool never ran solves concurrently"

        by_thread: dict[int, list] = {}
        for record in records:
            by_thread.setdefault(record.thread_id, []).append(record)

        epsilon = 1e-9
        for spans in by_thread.values():
            ordered = sorted(spans, key=lambda s: (s.start, -s.duration))
            stack: list = []
            for span in ordered:
                while stack and span.start >= stack[-1].end - epsilon:
                    stack.pop()
                for open_span in stack:
                    # Every still-open ancestor must fully contain this span:
                    # partial overlap would mean interleaved timing on one
                    # thread, i.e. a corrupted span stack.
                    assert span.end <= open_span.end + epsilon, (
                        f"{span.name} interleaves with {open_span.name}"
                    )
                stack.append(span)

        # Parent links agree with thread identity and containment.
        by_id = {r.span_id: r for r in records}
        for record in records:
            if record.parent_id is None:
                continue
            parent = by_id[record.parent_id]
            assert parent.thread_id == record.thread_id
            assert parent.start - epsilon <= record.start
            assert record.end <= parent.end + epsilon

    def test_each_solve_span_contains_a_planner_plan_child(
        self, cluster, tiny_tasks
    ):
        tracer = get_tracer()
        with tracer.capture():
            with PlanService(ExecutionPlanner(cluster), num_workers=4) as service:
                service.plan(tiny_tasks, timeout=60.0)
        records = tracer.records()
        by_id = {r.span_id: r for r in records}
        plans = [r for r in records if r.name == "planner.plan"]
        assert plans
        for plan_span in plans:
            assert plan_span.parent_id is not None
            assert by_id[plan_span.parent_id].name == "service.solve"
