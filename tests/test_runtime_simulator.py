"""Unit tests for the wave-by-wave execution simulator."""

import pytest

from repro.core.planner import ExecutionPlanner
from repro.costmodel.timing import ExecutionTimeModel
from repro.runtime.param_groups import ParameterDeviceGroupPool
from repro.runtime.simulator import WaveExecutionSimulator
from repro.runtime.transmission import build_transmissions


@pytest.fixture
def plan(two_island_cluster, tiny_tasks):
    return ExecutionPlanner(two_island_cluster).plan(tiny_tasks)


@pytest.fixture
def simulator(plan):
    timing = ExecutionTimeModel(plan.cluster)
    return WaveExecutionSimulator(
        plan=plan,
        timing_model=timing,
        transmissions=build_transmissions(plan),
        param_pool=ParameterDeviceGroupPool.from_plan(plan),
    )


class TestWaveExecutionSimulator:
    def test_iteration_time_is_sum_of_components(self, simulator):
        result = simulator.run_iteration()
        assert result.iteration_time == pytest.approx(result.breakdown.total)
        assert result.breakdown.forward_backward > 0
        assert result.breakdown.param_sync >= 0
        assert result.breakdown.send_recv >= 0

    def test_compute_dominates_for_this_workload(self, simulator):
        result = simulator.run_iteration()
        assert result.breakdown.fraction("forward_backward") > 0.5

    def test_wave_timings_are_contiguous(self, simulator):
        result = simulator.run_iteration()
        timings = result.metadata["wave_timings"]
        assert len(timings) == result.num_waves
        for prev, nxt in zip(timings, timings[1:]):
            assert nxt.start == pytest.approx(prev.end)

    def test_wave_compute_matches_slowest_entry(self, simulator, plan):
        result = simulator.run_iteration()
        timing = simulator.timing_model
        for wave, sim in zip(plan.waves, result.metadata["wave_timings"]):
            slowest = max(
                timing.operator_time(
                    plan.metagraph.metaop(e.metaop_index).representative, e.n_devices
                )
                * e.layers
                for e in wave.entries
            )
            assert sim.compute_duration == pytest.approx(slowest)

    def test_trace_only_marks_allocated_devices(self, simulator, plan):
        result = simulator.run_iteration()
        allocated = set()
        for wave in plan.waves:
            for entry in wave.entries:
                allocated.update(plan.placement.devices_for(wave.index, entry.metaop_index))
        traced = {seg.device_id for seg in result.trace.segments}
        assert traced <= allocated

    def test_trace_throughput_below_peak(self, simulator, plan):
        result = simulator.run_iteration()
        peak = plan.cluster.device_spec.peak_flops
        for seg in result.trace.segments:
            assert seg.flops_per_second <= peak * 1.001

    def test_device_memory_carried_from_placement(self, simulator, plan):
        result = simulator.run_iteration()
        assert result.device_memory_bytes == plan.placement.device_memory_bytes

    def test_deterministic(self, simulator):
        a = simulator.run_iteration()
        b = simulator.run_iteration()
        assert a.iteration_time == pytest.approx(b.iteration_time)
        assert a.breakdown.send_recv == pytest.approx(b.breakdown.send_recv)
