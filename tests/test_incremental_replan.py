"""Incremental replanning: byte-identical plans, structural reuse tiers.

The contract under test (``ExecutionPlanner.plan_incremental``): given a
retained previous plan, the planner may adopt structurally unchanged MetaLevel
allocations — or, on a full structural match, the whole plan skeleton — but
the produced plan must be **byte-identical** to what a from-scratch solve
would return.  Equivalence is asserted on ``plan_to_dict`` minus the
``planning_report`` key (stage timings are machine-dependent and the reuse
counters legitimately differ).
"""

import json

import pytest

from repro.cluster.topology import make_cluster
from repro.core.plandiff import NO_REUSE, diff_metagraphs, graph_signature
from repro.core.planner import ExecutionPlanner
from repro.core.serialization import plan_to_dict
from repro.service.fingerprint import fingerprint_workload
from repro.service.incremental import IncrementalPlanner, StaleTopologyError
from tests.conftest import make_chain_task


def canonical(plan) -> str:
    """The byte-equivalence view: everything except the planning report."""
    document = plan_to_dict(plan)
    document.pop("planning_report", None)
    return json.dumps(document, sort_keys=True)


def base_tasks():
    """Two-level workload with task-name-free (shared-scope) param keys."""
    return [
        make_chain_task("audio_task", {"audio": 2, "lm": 2}, batch=8,
                        shared_prefix="zoo.audio"),
        make_chain_task("vision_task", {"vision": 2, "lm": 2}, batch=4,
                        shared_prefix="zoo.vision"),
        make_chain_task("text_task", {"text": 2, "lm": 2}, batch=8,
                        shared_prefix="zoo.text"),
    ]


def resubmitted(tasks, index, weight=2.0):
    """The same task list with one task resubmitted: isomorphic, new name
    and weight — a fingerprint miss that is a full structural match."""
    replaced = list(tasks)
    old = replaced[index]
    prefix = {"audio_task": "zoo.audio", "vision_task": "zoo.vision",
              "text_task": "zoo.text"}[old.name]
    modules = {name: len(module.operators) for name, module in old.modules.items()}
    fresh = make_chain_task(f"{old.name}_v2", modules, batch=old.batch_size,
                            shared_prefix=prefix)
    fresh.weight = weight
    replaced[index] = fresh
    return replaced


@pytest.fixture
def planner():
    return ExecutionPlanner(make_cluster(16))


# ----------------------------------------------------------- plandiff itself
def test_graph_signature_invariant_under_rename(planner):
    plan_a = planner.plan(base_tasks())
    plan_b = planner.plan(resubmitted(base_tasks(), 1))
    assert graph_signature(plan_a.metagraph) == graph_signature(plan_b.metagraph)
    diff = diff_metagraphs(plan_a.metagraph, plan_b.metagraph)
    assert diff.full_structure


def perturbed_tasks():
    """``base_tasks`` with vision_task's LM head deepened: its level-1 MetaOp
    changes while level 0 is positionally untouched and reusable."""
    tasks = base_tasks()
    tasks[1] = make_chain_task("vision_task", {"vision": 2, "lm": 3},
                               batch=4, shared_prefix="zoo.vision")
    return tasks


def test_diff_detects_changed_level(planner):
    plan_a = planner.plan(base_tasks())
    plan_b = planner.plan(perturbed_tasks())
    diff = diff_metagraphs(plan_a.metagraph, plan_b.metagraph)
    assert not diff.full_structure
    assert 0 < len(diff.reusable_levels) < plan_b.metagraph.num_levels


def test_diff_no_reuse_on_disjoint_structures(planner):
    plan_a = planner.plan(base_tasks())
    plan_b = planner.plan([
        make_chain_task("other", {"enc": 3, "dec": 1, "lm": 1}, batch=2)
    ])
    assert diff_metagraphs(plan_a.metagraph, plan_b.metagraph) == NO_REUSE


# --------------------------------------------------- tier 1: full structure
def test_full_structure_reuse_is_byte_identical(planner):
    previous = planner.plan(base_tasks())
    churned = resubmitted(base_tasks(), 1)
    incremental = planner.plan_incremental(churned, previous=previous)
    reference = planner.plan(churned)
    assert canonical(incremental) == canonical(reference)
    assert incremental.report.reused_levels == incremental.metagraph.num_levels
    assert reference.report.reused_levels == 0


def test_full_structure_reuse_copies_not_aliases(planner):
    previous = planner.plan(base_tasks())
    incremental = planner.plan_incremental(
        resubmitted(base_tasks(), 0), previous=previous
    )
    for level, allocation in incremental.level_allocations.items():
        assert allocation is not previous.level_allocations[level]
    assert incremental.schedule is not previous.schedule
    assert incremental.placement is not previous.placement


# ------------------------------------------------------ tier 2: level reuse
def test_partial_level_reuse_is_byte_identical(planner):
    previous = planner.plan(base_tasks())
    perturbed = perturbed_tasks()
    incremental = planner.plan_incremental(perturbed, previous=previous)
    reference = planner.plan(perturbed)
    assert canonical(incremental) == canonical(reference)
    assert 0 < incremental.report.reused_levels < incremental.metagraph.num_levels


# -------------------------------------------------------- tier 3 / refusals
def test_disjoint_workload_falls_back_to_full_solve(planner):
    previous = planner.plan(base_tasks())
    other = [make_chain_task("other", {"enc": 3, "dec": 1, "lm": 1}, batch=2)]
    incremental = planner.plan_incremental(other, previous=previous)
    assert canonical(incremental) == canonical(planner.plan(other))
    assert incremental.report.reused_levels == 0


def test_no_previous_plan_matches_plain_plan(planner):
    tasks = base_tasks()
    assert canonical(planner.plan_incremental(tasks, previous=None)) == canonical(
        planner.plan(tasks)
    )


def test_noisy_profiles_refuse_reuse():
    cluster = make_cluster(16)
    noisy = ExecutionPlanner(cluster, profile_noise_std=0.05)
    previous = noisy.plan(base_tasks())
    incremental = noisy.plan_incremental(
        resubmitted(base_tasks(), 1), previous=previous
    )
    assert incremental.report.reused_levels == 0


def test_changed_cluster_refuses_reuse(planner):
    previous = ExecutionPlanner(make_cluster(8)).plan(base_tasks())
    churned = resubmitted(base_tasks(), 1)
    incremental = planner.plan_incremental(churned, previous=previous)
    assert incremental.report.reused_levels == 0
    assert canonical(incremental) == canonical(planner.plan(churned))


# ------------------------------------------------ IncrementalPlanner wiring
def test_incremental_planner_reuses_levels_and_stays_equivalent(planner):
    reusing = IncrementalPlanner(ExecutionPlanner(make_cluster(16)),
                                 reuse_levels=True)
    plain = IncrementalPlanner(ExecutionPlanner(make_cluster(16)))
    sequence = [base_tasks(), resubmitted(base_tasks(), 1),
                resubmitted(resubmitted(base_tasks(), 1), 0)]
    for workload in sequence:
        assert canonical(reusing.plan(workload)) == canonical(plain.plan(workload))
    assert reusing.stats.levels_reused > 0
    assert reusing.stats.full_structure_reuses == 2
    assert plain.stats.levels_reused == 0


def test_incremental_planner_clear_drops_previous_plan():
    reusing = IncrementalPlanner(ExecutionPlanner(make_cluster(16)),
                                 reuse_levels=True)
    reusing.plan(base_tasks())
    reusing.clear()
    plan = reusing.plan(resubmitted(base_tasks(), 1))
    assert plan.report.reused_levels == 0


def test_stale_topology_error_with_reuse_levels():
    planner = ExecutionPlanner(make_cluster(16))
    reusing = IncrementalPlanner(planner, reuse_levels=True)
    reusing.plan(base_tasks())
    planner.cluster = make_cluster(8)
    with pytest.raises(StaleTopologyError):
        reusing.plan(base_tasks())


def test_fingerprint_misses_yet_structure_matches(planner):
    """The realistic trigger: weight changes the fingerprint, not the plan."""
    tasks = base_tasks()
    churned = resubmitted(base_tasks(), 1)
    cluster = planner.cluster
    config = planner.config_signature()
    assert fingerprint_workload(tasks, cluster, config) != fingerprint_workload(
        churned, cluster, config
    )
    previous = planner.plan(tasks)
    diff = diff_metagraphs(previous.metagraph, planner.plan(churned).metagraph)
    assert diff.full_structure
