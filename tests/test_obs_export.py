"""Tests for the Chrome trace exporter, validator and text tree report."""

import json

import pytest

from repro.obs import (
    SIM_PID,
    WALL_PID,
    MetricsRegistry,
    SpanRecord,
    SpanTracer,
    TraceValidationError,
    chrome_trace_document,
    render_span_tree,
    span_events,
    spans_from_chrome_trace,
    utilization_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.runtime.trace import UtilizationTrace


def make_span(
    name: str,
    start: float,
    duration: float,
    *,
    thread_id: int = 100,
    thread_name: str = "main",
    span_id: int = 0,
    parent_id: int | None = None,
    depth: int = 0,
    category: str = "test",
    attributes: dict | None = None,
) -> SpanRecord:
    return SpanRecord(
        name=name,
        category=category,
        start=start,
        duration=duration,
        thread_id=thread_id,
        thread_name=thread_name,
        span_id=span_id,
        parent_id=parent_id,
        depth=depth,
        attributes=attributes or {},
    )


@pytest.fixture
def sample_spans():
    return [
        make_span("root", 10.0, 1.0, span_id=0, attributes={"k": "v"}),
        make_span("child", 10.2, 0.3, span_id=1, parent_id=0, depth=1),
        make_span(
            "worker",
            10.1,
            0.5,
            thread_id=200,
            thread_name="plan-worker-0",
            span_id=2,
        ),
    ]


@pytest.fixture
def sim_trace():
    trace = UtilizationTrace(num_devices=2, peak_flops_per_device=100.0)
    trace.add_busy(
        device_id=0, start=0.0, duration=1.0, flops_per_second=50.0, metaop_index=3
    )
    trace.add_busy(
        device_id=1, start=0.5, duration=1.0, flops_per_second=80.0, label="wave0"
    )
    trace.end_time = 2.0
    return trace


class TestSpanEvents:
    def test_empty_spans_yield_no_events(self):
        assert span_events([]) == []

    def test_complete_events_with_relative_microsecond_timestamps(
        self, sample_spans
    ):
        events = span_events(sample_spans)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        root = next(e for e in complete if e["name"] == "root")
        assert root["pid"] == WALL_PID
        assert root["tid"] == 100
        assert root["ts"] == pytest.approx(0.0)  # rebased to earliest span
        assert root["dur"] == pytest.approx(1.0e6)
        assert root["args"] == {"k": "v"}
        child = next(e for e in complete if e["name"] == "child")
        assert child["ts"] == pytest.approx(0.2e6)

    def test_thread_and_process_metadata(self, sample_spans):
        events = span_events(sample_spans)
        metadata = [e for e in events if e["ph"] == "M"]
        names = {
            (e["name"], e.get("tid")): e["args"] for e in metadata
        }
        assert names[("process_name", 0)]["name"] == "wall clock (repro)"
        assert names[("thread_name", 100)]["name"] == "main"
        assert names[("thread_name", 200)]["name"] == "plan-worker-0"

    def test_non_json_attributes_are_stringified(self):
        span = make_span("s", 0.0, 1.0, attributes={"obj": object()})
        events = span_events([span])
        (complete,) = [e for e in events if e["ph"] == "X"]
        assert isinstance(complete["args"]["obj"], str)


class TestUtilizationEvents:
    def test_device_slices_under_simulated_process(self, sim_trace):
        events = utilization_events(sim_trace, num_points=10)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 2
        assert all(e["pid"] == SIM_PID for e in slices)
        labelled = next(e for e in slices if e["tid"] == 1)
        assert labelled["name"] == "wave0"
        unlabelled = next(e for e in slices if e["tid"] == 0)
        assert unlabelled["name"] == "metaop3"
        assert unlabelled["args"]["metaop_index"] == 3

    def test_gpu_thread_names(self, sim_trace):
        events = utilization_events(sim_trace, num_points=10)
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {0: "gpu0", 1: "gpu1"}

    def test_counter_tracks_for_flops_and_utilization(self, sim_trace):
        events = utilization_events(sim_trace, num_points=10)
        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"cluster.achieved_flops", "cluster.utilization"}
        fractions = [
            e["args"]["fraction"]
            for e in counters
            if e["name"] == "cluster.utilization"
        ]
        assert fractions and all(0.0 <= f <= 1.0 for f in fractions)


class TestDocumentAndValidation:
    def test_document_assembles_all_sections(self, sample_spans, sim_trace):
        registry = MetricsRegistry()
        registry.inc("service.cache", outcome="hit")
        document = chrome_trace_document(
            sample_spans,
            utilization=sim_trace,
            metrics=registry.snapshot(),
            metadata={"workload": "test"},
            num_points=10,
        )
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["generator"] == "repro.obs"
        assert document["otherData"]["workload"] == "test"
        assert (
            document["otherData"]["metrics"]["counters"]["service.cache{outcome=hit}"]
            == 1.0
        )
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"X", "M", "C"}
        assert validate_chrome_trace(document) == len(document["traceEvents"])

    def test_document_is_json_serializable(self, sample_spans, sim_trace):
        document = chrome_trace_document(
            sample_spans, utilization=sim_trace, num_points=10
        )
        round_tripped = json.loads(json.dumps(document))
        assert validate_chrome_trace(round_tripped) == len(
            document["traceEvents"]
        )

    @pytest.mark.parametrize(
        "document, message",
        [
            ([], "must be a JSON object"),
            ({"traceEvents": {}}, "'traceEvents' must be a list"),
            ({"traceEvents": ["nope"]}, "must be an object"),
            ({"traceEvents": [{"ph": "Z"}]}, "unknown or missing phase"),
            ({"traceEvents": [{"ph": "X", "name": "a"}]}, "requires"),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "a",
                            "ts": -1.0,
                            "dur": 1.0,
                            "pid": 1,
                            "tid": 1,
                        }
                    ]
                },
                "non-negative",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "a",
                            "ts": "soon",
                            "dur": 1.0,
                            "pid": 1,
                            "tid": 1,
                        }
                    ]
                },
                "must be numeric",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": 7,
                            "ts": 0.0,
                            "dur": 1.0,
                            "pid": 1,
                            "tid": 1,
                        }
                    ]
                },
                "'name' must be a string",
            ),
        ],
    )
    def test_validator_rejects_malformed_documents(self, document, message):
        with pytest.raises(TraceValidationError, match=message):
            validate_chrome_trace(document)

    def test_validator_caps_reported_errors(self):
        events = [{"ph": "Z"} for _ in range(50)]
        with pytest.raises(TraceValidationError, match="suppressed"):
            validate_chrome_trace({"traceEvents": events}, max_errors=5)

    def test_write_refuses_invalid_document(self, tmp_path):
        with pytest.raises(TraceValidationError):
            write_chrome_trace(tmp_path / "bad.json", {"traceEvents": {}})
        assert not (tmp_path / "bad.json").exists()

    def test_write_and_reload(self, tmp_path, sample_spans):
        document = chrome_trace_document(sample_spans)
        path = write_chrome_trace(tmp_path / "nested" / "trace.json", document)
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == len(document["traceEvents"])


class TestRoundTrip:
    def test_spans_survive_export_and_reimport(self, sample_spans):
        document = chrome_trace_document(sample_spans)
        restored = spans_from_chrome_trace(document)
        assert {s.name for s in restored} == {"root", "child", "worker"}
        by_name = {s.name: s for s in restored}
        assert by_name["root"].duration == pytest.approx(1.0)
        assert by_name["root"].attributes == {"k": "v"}
        assert by_name["worker"].thread_name == "plan-worker-0"

    def test_simulated_threads_prefixed(self, sample_spans, sim_trace):
        document = chrome_trace_document(
            sample_spans, utilization=sim_trace, num_points=10
        )
        restored = spans_from_chrome_trace(document)
        sim_names = {s.thread_name for s in restored if s.thread_name.startswith("sim:")}
        assert sim_names == {"sim:gpu0", "sim:gpu1"}


class TestTreeReport:
    def test_empty_report(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_nesting_and_percentages(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("half"):
                pass
        report = render_span_tree(tracer.records())
        lines = report.splitlines()
        assert lines[0].startswith("[MainThread]")
        assert lines[1].lstrip().startswith("root")
        assert lines[2].startswith("  half")  # indented child
        assert "%" in lines[2] and "%" not in lines[1]

    def test_threads_render_as_separate_sections(self, sample_spans):
        report = render_span_tree(sample_spans)
        assert "[main]" in report
        assert "[plan-worker-0]" in report
        main_section = report.index("[main]")
        assert report.index("root", main_section) < report.index("worker")

    def test_min_fraction_prunes_short_spans(self):
        spans = [
            make_span("root", 0.0, 1.0, span_id=0),
            make_span("tiny", 0.1, 0.001, span_id=1, parent_id=0, depth=1),
            make_span("big", 0.2, 0.5, span_id=2, parent_id=0, depth=1),
        ]
        report = render_span_tree(spans, min_fraction=0.01)
        assert "big" in report and "tiny" not in report
