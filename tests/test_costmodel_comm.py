"""Unit tests for the communication cost primitives."""

import pytest

from repro.cluster.topology import InterconnectSpec
from repro.costmodel.comm import (
    LinkClass,
    all_gather_time,
    classify_link,
    group_allreduce_time,
    group_transfer_time,
    link_spec,
    p2p_time,
    reduce_scatter_time,
    ring_allreduce_time,
)

LINK = InterconnectSpec(bandwidth=100e9, latency=10e-6)


class TestRingAllReduce:
    def test_zero_cases(self):
        assert ring_allreduce_time(0.0, 8, LINK) == 0.0
        assert ring_allreduce_time(1e9, 1, LINK) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(-1.0, 2, LINK)
        with pytest.raises(ValueError):
            ring_allreduce_time(1.0, 0, LINK)

    def test_bandwidth_term_approaches_2x_volume(self):
        volume = 1e9
        time_large_group = ring_allreduce_time(volume, 64, LINK)
        # 2 * (g-1)/g -> 2, so the bandwidth term approaches 2 * V / BW.
        assert time_large_group == pytest.approx(2 * volume / LINK.bandwidth, rel=0.1)

    def test_monotone_in_volume(self):
        assert ring_allreduce_time(2e9, 8, LINK) > ring_allreduce_time(1e9, 8, LINK)

    def test_latency_grows_logarithmically(self):
        tiny = 1.0  # bandwidth term negligible
        t8 = ring_allreduce_time(tiny, 8, LINK)
        t64 = ring_allreduce_time(tiny, 64, LINK)
        assert t64 / t8 == pytest.approx(2.0, rel=0.05)  # log2(64)/log2(8)


class TestOtherCollectives:
    def test_all_gather_half_of_allreduce_bandwidth(self):
        volume = 1e9
        ag = all_gather_time(volume, 32, LINK)
        ar = ring_allreduce_time(volume, 32, LINK)
        assert ag < ar

    def test_reduce_scatter_matches_all_gather(self):
        assert reduce_scatter_time(1e8, 8, LINK) == all_gather_time(1e8, 8, LINK)

    def test_p2p(self):
        assert p2p_time(0.0, LINK) == 0.0
        assert p2p_time(1e9, LINK) == pytest.approx(LINK.latency + 1e9 / LINK.bandwidth)
        with pytest.raises(ValueError):
            p2p_time(-1.0, LINK)


class TestLinkClassification:
    def test_same_group_is_intra_device(self, two_island_cluster):
        assert classify_link(two_island_cluster, [0, 1], [0, 1]) is LinkClass.INTRA_DEVICE

    def test_same_island_different_devices(self, two_island_cluster):
        assert classify_link(two_island_cluster, [0, 1], [2, 3]) is LinkClass.INTRA_ISLAND

    def test_cross_island(self, two_island_cluster):
        assert classify_link(two_island_cluster, [0], [4]) is LinkClass.INTER_ISLAND

    def test_empty_groups_rejected(self, two_island_cluster):
        with pytest.raises(ValueError):
            classify_link(two_island_cluster, [], [0])

    def test_link_spec_mapping(self, two_island_cluster):
        assert link_spec(two_island_cluster, LinkClass.INTRA_DEVICE) is two_island_cluster.intra_device
        assert link_spec(two_island_cluster, LinkClass.INTRA_ISLAND) is two_island_cluster.intra_island
        assert link_spec(two_island_cluster, LinkClass.INTER_ISLAND) is two_island_cluster.inter_island


class TestGroupPrimitives:
    def test_group_allreduce_trivial_group(self, two_island_cluster):
        assert group_allreduce_time(two_island_cluster, [0], 1e9) == 0.0
        assert group_allreduce_time(two_island_cluster, [0, 1], 0.0) == 0.0

    def test_group_allreduce_cross_island_slower_for_pairs(self, two_island_cluster):
        intra = group_allreduce_time(two_island_cluster, [0, 1], 1e9)
        inter = group_allreduce_time(two_island_cluster, [0, 4], 1e9)
        assert inter > intra

    def test_group_transfer_same_devices_is_cheap(self, two_island_cluster):
        same = group_transfer_time(two_island_cluster, [0, 1], [0, 1], 1e8)
        moved = group_transfer_time(two_island_cluster, [0, 1], [4, 5], 1e8)
        assert same < moved

    def test_group_transfer_parallelises_over_pairs(self, two_island_cluster):
        narrow = group_transfer_time(two_island_cluster, [0], [4], 1e9)
        wide = group_transfer_time(two_island_cluster, [0, 1, 2, 3], [4, 5, 6, 7], 1e9)
        assert wide < narrow

    def test_group_transfer_zero_volume(self, two_island_cluster):
        assert group_transfer_time(two_island_cluster, [0], [1], 0.0) == 0.0
        with pytest.raises(ValueError):
            group_transfer_time(two_island_cluster, [0], [1], -1.0)
