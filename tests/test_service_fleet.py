"""Tests for the fingerprint-sharded plan-service fleet.

Covers the routing function (jump consistent hash and its minimal-movement
guarantee), cross-shard single-flight coalescing, reshard byte-identity,
partitioned persistence with parallel warm start, and same-seed telemetry
journal determinism.
"""

import threading
from concurrent.futures import wait

import pytest

from repro.cluster.topology import make_cluster
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner
from repro.obs import TelemetryJournal
from repro.service import (
    FleetError,
    PlanService,
    PlanServiceFleet,
    PlanCache,
    StripedPlanCache,
    jump_consistent_hash,
    shard_for_fingerprint,
)


@pytest.fixture
def cluster():
    return make_cluster(4, devices_per_node=4)


class CountingFactory:
    """Planner factory whose planners share one invocation counter."""

    def __init__(self, cluster, gate: threading.Event | None = None) -> None:
        self.cluster = cluster
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> ExecutionPlanner:
        factory = self

        class _Planner(ExecutionPlanner):
            def plan(self, workload, **kwargs) -> ExecutionPlan:
                with factory._lock:
                    factory.calls += 1
                if factory.gate is not None:
                    assert factory.gate.wait(timeout=10.0), "gate never opened"
                return super().plan(workload, **kwargs)

        return _Planner(self.cluster)


class TestJumpConsistentHash:
    def test_range_and_determinism(self):
        for key in (0, 1, 17, 2**31, 2**63 - 1, 2**64 - 1):
            for buckets in (1, 2, 4, 8, 100):
                bucket = jump_consistent_hash(key, buckets)
                assert 0 <= bucket < buckets
                assert bucket == jump_consistent_hash(key, buckets)

    def test_single_bucket_is_zero(self):
        assert all(jump_consistent_hash(k, 1) == 0 for k in range(50))

    def test_minimal_movement_on_growth(self):
        """Growing N -> N+1 only ever moves keys into the new bucket."""
        keys = [hash(("key", i)) & (2**64 - 1) for i in range(500)]
        for buckets in range(1, 9):
            moved = 0
            for key in keys:
                before = jump_consistent_hash(key, buckets)
                after = jump_consistent_hash(key, buckets + 1)
                if after != before:
                    assert after == buckets  # only into the new bucket
                    moved += 1
            # Expected movement is ~1/(N+1) of the keyspace.
            assert moved < len(keys) * 2.5 / (buckets + 1)

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(FleetError):
            jump_consistent_hash(42, 0)

    def test_fingerprint_routing_spreads(self):
        import hashlib

        fingerprints = [
            hashlib.sha256(str(i).encode()).hexdigest() for i in range(256)
        ]
        census = [0] * 8
        for fingerprint in fingerprints:
            census[shard_for_fingerprint(fingerprint, 8)] += 1
        assert all(count > 0 for count in census)

    def test_non_hex_fingerprints_still_route(self):
        assert 0 <= shard_for_fingerprint("not-hex-at-all!", 4) < 4
        assert shard_for_fingerprint("", 4) == 0


class TestFleetServing:
    def test_plan_matches_direct_planner(self, cluster, tiny_tasks):
        direct = ExecutionPlanner(cluster).plan(tiny_tasks)
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=3
        ) as fleet:
            served = fleet.plan(tiny_tasks, timeout=30.0)
        assert served.fingerprint == direct.fingerprint
        assert served.schedule.makespan == pytest.approx(direct.schedule.makespan)

    def test_identical_fingerprints_route_to_one_shard(self, cluster, tiny_tasks):
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4
        ) as fleet:
            fleet.plan(tiny_tasks, timeout=30.0)
            fleet.plan(list(reversed(tiny_tasks)), timeout=30.0)
            census = fleet.shard_census()
        assert sum(census) == 2
        assert max(census) == 2  # canonical fingerprint -> same shard twice

    def test_coalescing_across_entry_points(self, cluster, tiny_tasks):
        """The same fingerprint submitted through submit(), submit_many() and
        plan()-bound threads coalesces to a single solve fleet-wide."""
        gate = threading.Event()
        factory = CountingFactory(cluster, gate)
        fleet = PlanServiceFleet(factory, num_shards=4, num_workers=2)
        try:
            direct = fleet.submit(tiny_tasks)
            batch = fleet.submit_many([tiny_tasks, list(reversed(tiny_tasks))])
            assert fleet.pending_requests() == 1  # all three coalesced
            gate.set()
            wait([direct, *batch], timeout=30.0)
            assert direct.result().fingerprint == batch[1].result().fingerprint
        finally:
            gate.set()
            fleet.close()
        assert factory.calls == 1

    def test_submit_many_preserves_input_order(self, cluster, tiny_tasks):
        workloads = [tiny_tasks, tiny_tasks[:1], tiny_tasks[1:]]
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4
        ) as fleet:
            futures = fleet.submit_many(workloads)
            wait(futures, timeout=30.0)
            expected = [fleet.fingerprint(w) for w in workloads]
        assert [f.result().fingerprint for f in futures] == expected

    def test_fleet_payloads_match_single_service(self, cluster, tiny_tasks):
        workloads = [tiny_tasks, tiny_tasks[:1], tiny_tasks[1:]]
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4
        ) as fleet:
            fleet_payloads = {
                fleet.fingerprint(w): fleet.serialized_plan(w, timeout=30.0)
                for w in workloads
            }
        with PlanService(
            lambda: ExecutionPlanner(cluster), cache=PlanCache()
        ) as service:
            for workload in workloads:
                service.plan(workload, timeout=30.0)
            from repro.experiments.harness import _canonical_plan_payload
            import json

            def canon(text: str) -> str:
                return json.dumps(
                    {
                        k: v
                        for k, v in json.loads(text).items()
                        if k != "planning_report"
                    },
                    sort_keys=True,
                )

            for fingerprint, payload in fleet_payloads.items():
                reference = service.cache.get_payload(fingerprint)
                assert reference is not None
                assert canon(payload) == canon(reference)

    def test_shared_striped_cache_serves_all_shards(self, cluster, tiny_tasks):
        cache = StripedPlanCache(capacity=16, num_stripes=4)
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=2, cache=cache
        ) as fleet:
            first = fleet.serialized_plan(tiny_tasks, timeout=30.0)
            second = fleet.serialized_plan(tiny_tasks, timeout=30.0)
        assert first.encode() == second.encode()
        assert cache.stats.puts >= 1

    def test_closed_fleet_rejects_requests(self, cluster, tiny_tasks):
        fleet = PlanServiceFleet(lambda: ExecutionPlanner(cluster), num_shards=2)
        fleet.close()
        with pytest.raises(FleetError):
            fleet.submit(tiny_tasks)

    def test_invalid_shard_count_rejected(self, cluster):
        with pytest.raises(FleetError):
            PlanServiceFleet(lambda: ExecutionPlanner(cluster), num_shards=0)


class TestTraceDeterminism:
    def test_per_shard_trace_namespaces(self, cluster, tiny_tasks):
        journal = TelemetryJournal()
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4, journal=journal
        ) as fleet:
            fleet.plan(tiny_tasks, timeout=30.0)
            shard = fleet.shard_of(fleet.fingerprint(tiny_tasks))
        trace_ids = {
            event["trace_id"]
            for event in journal.events()
            if "trace_id" in event
        }
        assert trace_ids
        for trace_id in trace_ids:
            assert f"-s{shard}-" in trace_id

    def test_same_seed_runs_produce_identical_journals(self, cluster, tiny_tasks):
        """Two same-seed fleets serving the same serial stream journal
        byte-identically (trace IDs namespaced by shard ordinal, no
        wall-clock in the journal)."""
        workloads = [tiny_tasks, tiny_tasks[:1], tiny_tasks, tiny_tasks[1:]]

        def run() -> str:
            journal = TelemetryJournal()
            with PlanServiceFleet(
                lambda: ExecutionPlanner(cluster),
                num_shards=4,
                num_workers=1,
                journal=journal,
                trace_seed=11,
            ) as fleet:
                for workload in workloads:
                    fleet.plan(workload, timeout=30.0)
            return journal.dumps()

        assert run() == run()


class TestPartitionedPersistence:
    def _serve(self, fleet, workloads):
        return {
            fleet.fingerprint(w): fleet.serialized_plan(w, timeout=30.0)
            for w in workloads
        }

    def test_persist_and_parallel_warm_start(self, cluster, tiny_tasks, tmp_path):
        workloads = [tiny_tasks, tiny_tasks[:1], tiny_tasks[1:]]
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4, store_dir=tmp_path
        ) as fleet:
            payloads = self._serve(fleet, workloads)
        assert sorted(p.name for p in tmp_path.glob("shard-*.json")) == [
            f"shard-{i:02d}.json" for i in range(4)
        ]

        factory = CountingFactory(cluster)
        with PlanServiceFleet(
            factory, num_shards=4, store_dir=tmp_path
        ) as warmed:
            assert warmed.warm_started == len(payloads)
            reserved = self._serve(warmed, workloads)
        assert factory.calls == 0  # every request served from the warm cache
        assert reserved == payloads

    def test_reshard_returns_byte_identical_payloads(
        self, cluster, tiny_tasks, tmp_path
    ):
        """A shard-count change re-routes every fingerprint but serves the
        exact bytes the old fleet persisted."""
        workloads = [tiny_tasks, tiny_tasks[:1], tiny_tasks[1:]]
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4, store_dir=tmp_path
        ) as fleet:
            payloads = self._serve(fleet, workloads)

        for new_count in (2, 8):
            factory = CountingFactory(cluster)
            with PlanServiceFleet(
                factory, num_shards=new_count, store_dir=tmp_path
            ) as resharded:
                assert self._serve(resharded, workloads) == payloads
            assert factory.calls == 0

        # After the 8-shard fleet persisted, exactly its partitions remain.
        assert sorted(p.name for p in tmp_path.glob("shard-*.json")) == [
            f"shard-{i:02d}.json" for i in range(8)
        ]

    def test_persist_repartitions_for_current_owners(
        self, cluster, tiny_tasks, tmp_path
    ):
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=4, store_dir=tmp_path
        ) as fleet:
            fleet.plan(tiny_tasks, timeout=30.0)
        with PlanServiceFleet(
            lambda: ExecutionPlanner(cluster), num_shards=2, store_dir=tmp_path
        ) as shrunk:
            assert shrunk.warm_started == 1
        # The shrunk fleet rewrote the directory down to its own partitions.
        names = sorted(p.name for p in tmp_path.glob("shard-*.json"))
        assert names == ["shard-00.json", "shard-01.json"]
