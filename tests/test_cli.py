"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--model", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare", "--model", "multitask-clip"])
        assert args.gpus == 16
        assert args.tasks is None


class TestCompareCommand:
    def test_prints_comparison_table(self, capsys):
        exit_code = main(
            [
                "compare",
                "--model", "multitask-clip",
                "--tasks", "2",
                "--gpus", "8",
                "--systems", "spindle", "deepspeed",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "spindle" in output
        assert "deepspeed" in output
        assert "speedup vs deepspeed" in output


class TestPlanCommand:
    def test_prints_plan_table(self, capsys):
        exit_code = main(
            ["plan", "--model", "multitask-clip", "--tasks", "2", "--gpus", "8"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "wavefront execution plan" in output
        assert "MetaOps" in output

    def test_writes_plan_json(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        exit_code = main(
            [
                "plan",
                "--model", "multitask-clip",
                "--tasks", "2",
                "--gpus", "8",
                "--output", str(path),
            ]
        )
        assert exit_code == 0
        document = json.loads(path.read_text())
        assert document["format_version"] == 1
        assert document["waves"]
        assert str(path) in capsys.readouterr().out

    def test_model_size_forwarded(self, capsys):
        exit_code = main(
            ["plan", "--model", "qwen-val", "--tasks", "1", "--gpus", "8",
             "--model-size", "10b"]
        )
        assert exit_code == 0


class TestScalingCommand:
    def test_prints_scaling_table(self, capsys):
        exit_code = main(
            ["scaling", "--model", "multitask-clip", "--tasks", "2", "--gpus", "8"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "resource scalability" in output
        assert "sigma(8)" in output

    def test_device_counts_derived_from_cluster_size(self, capsys):
        exit_code = main(
            ["scaling", "--model", "multitask-clip", "--tasks", "2", "--gpus", "16"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "sigma(16)" in output
        assert "sigma(32)" not in output


class TestServeBenchCommand:
    def test_reports_throughput_and_hit_rate(self, capsys):
        exit_code = main(
            [
                "serve-bench",
                "--model", "multitask-clip",
                "--tasks", "2",
                "--gpus", "8",
                "--requests", "8",
                "--unique", "2",
                "--workers", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "plan service throughput" in output
        assert "cache hit rate" in output
        assert "speedup" in output


class TestElasticCommand:
    ARGS = [
        "elastic",
        "--model", "multitask-clip",
        "--tasks", "2",
        "--gpus", "8",
        "--iterations", "60",
        "--events", "2",
        "--seed", "4",
    ]

    def test_prints_events_and_summary(self, capsys):
        exit_code = main(self.ARGS)
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "elastic events" in output
        assert "cumulative slowdown" in output
        assert "device_failure" in output

    def test_json_report_is_seed_deterministic(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["replan_count"] >= 1
        assert document["total_iterations"] == 60
        assert "replan_measured" not in first  # wall-clock stays out-of-band

    def test_scenarios_and_policies_run(self, capsys):
        for scenario in ("flash-crowd", "hetero-expand", "rolling-stragglers"):
            exit_code = main(
                self.ARGS + ["--scenario", scenario, "--policy", "debounced"]
            )
            assert exit_code == 0, scenario
        outage = [arg if arg != "8" else "16" for arg in self.ARGS]
        assert main(outage + ["--scenario", "island-outage"]) == 0
        capsys.readouterr()

    def test_island_outage_needs_two_nodes(self, capsys):
        assert main(self.ARGS + ["--scenario", "island-outage"]) == 1
        capsys.readouterr()

    def test_writes_report_file(self, tmp_path, capsys):
        path = tmp_path / "elastic.json"
        exit_code = main(self.ARGS + ["--output", str(path)])
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(path.read_text())
        assert document["scenario"] == "random-failures-seed4"

    def test_invalid_arguments_fail_cleanly(self, capsys):
        assert main(self.ARGS[:-2] + ["--iterations", "1"]) == 1
        assert main(self.ARGS + ["--events", "0"]) == 1
        capsys.readouterr()


class TestTraceCommand:
    ARGS = ["trace", "--model", "multitask-clip", "--tasks", "2", "--gpus", "8"]

    def test_writes_a_valid_chrome_trace(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace.json"
        exit_code = main(self.ARGS + ["--out", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "trace written to" in output
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) > 0
        assert document["otherData"]["generator"] == "repro.obs"

    def test_trace_covers_planner_service_and_simulator(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(self.ARGS + ["--out", str(path)]) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        names = {
            e["name"] for e in document["traceEvents"] if e.get("ph") == "X"
        }
        assert "planner.plan" in names
        assert "planner.wavefront_scheduling" in names
        assert "service.submit" in names
        assert "service.solve" in names
        assert "simulator.wave" in names
        counters = {
            e["name"] for e in document["traceEvents"] if e.get("ph") == "C"
        }
        assert "cluster.utilization" in counters
        cache = document["otherData"]["metrics"]["counters"]
        assert cache.get("service.cache{outcome=miss}") == 1.0

    def test_tracing_disabled_again_after_capture(self, tmp_path, capsys):
        from repro.obs import get_tracer

        assert not get_tracer().enabled
        assert main(self.ARGS + ["--out", str(tmp_path / "t.json")]) == 0
        capsys.readouterr()
        assert not get_tracer().enabled

    def test_invalid_workers_fail_cleanly(self, tmp_path, capsys):
        exit_code = main(
            self.ARGS + ["--out", str(tmp_path / "t.json"), "--workers", "0"]
        )
        capsys.readouterr()
        assert exit_code == 1


class TestObsReportCommand:
    def test_report_from_captured_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            ["trace", "--model", "multitask-clip", "--tasks", "2",
             "--gpus", "8", "--out", str(path)]
        ) == 0
        capsys.readouterr()
        exit_code = main(["obs", "report", "--input", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "planner.plan" in output
        assert "[sim:gpu0]" in output
        assert "ms" in output

    def test_live_report_renders_tree_and_metrics(self, capsys):
        exit_code = main(
            ["obs", "report", "--model", "multitask-clip", "--tasks", "2",
             "--gpus", "8"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "planner.plan" in output
        assert "histograms:" in output
        assert "planner.solve_seconds{stage=" in output

    def test_missing_input_file_fails_cleanly(self, capsys):
        assert main(["obs", "report", "--input", "/nonexistent/trace.json"]) == 1
        capsys.readouterr()

    def test_invalid_trace_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
        assert main(["obs", "report", "--input", str(bad)]) == 1
        not_json = tmp_path / "not.json"
        not_json.write_text("not json at all")
        assert main(["obs", "report", "--input", str(not_json)]) == 1
        capsys.readouterr()

    def test_needs_input_or_workload(self, capsys):
        assert main(["obs", "report"]) == 1
        capsys.readouterr()
