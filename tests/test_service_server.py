"""Tests for the concurrent plan service (single-flight, batching, caching)."""

import threading

import pytest

from repro.cluster.topology import make_cluster
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner
from repro.service import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_MISS,
    PlanCache,
    PlanService,
    ServiceError,
)


class GatedPlanner(ExecutionPlanner):
    """Planner whose ``plan`` blocks on an event and counts invocations."""

    def __init__(self, cluster, gate: threading.Event) -> None:
        super().__init__(cluster)
        self.gate = gate
        self.calls = 0
        self._count_lock = threading.Lock()

    def plan(self, workload, **kwargs) -> ExecutionPlan:
        with self._count_lock:
            self.calls += 1
        assert self.gate.wait(timeout=10.0), "test gate never opened"
        return super().plan(workload, **kwargs)


@pytest.fixture
def cluster():
    return make_cluster(4, devices_per_node=4)


class TestBasicServing:
    def test_plan_matches_direct_planner(self, cluster, tiny_tasks):
        direct = ExecutionPlanner(cluster).plan(tiny_tasks)
        with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
            served = service.plan(tiny_tasks, timeout=30.0)
        assert served.fingerprint == direct.fingerprint
        assert served.schedule.makespan == pytest.approx(direct.schedule.makespan)

    def test_repeat_requests_hit_the_cache(self, cluster, tiny_tasks):
        with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
            first = service.plan(tiny_tasks, timeout=30.0)
            second = service.plan(tiny_tasks, timeout=30.0)
            third = service.plan(list(reversed(tiny_tasks)), timeout=30.0)
        assert second is first  # served straight from the cache
        assert third is first  # canonical fingerprint ignores task order
        assert service.stats.count(OUTCOME_MISS) == 1
        assert service.stats.count(OUTCOME_HIT) == 2
        assert service.stats.hit_rate == pytest.approx(2 / 3)

    def test_serialized_plan_byte_identical(self, cluster, tiny_tasks):
        with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
            first = service.serialized_plan(tiny_tasks, timeout=30.0)
            second = service.serialized_plan(tiny_tasks, timeout=30.0)
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_planner_factory_builds_per_worker_planners(self, cluster, tiny_tasks):
        with PlanService(
            lambda: ExecutionPlanner(cluster), num_workers=2
        ) as service:
            plan = service.plan(tiny_tasks, timeout=30.0)
        assert plan.fingerprint is not None

    def test_invalid_configuration_rejected(self, cluster):
        with pytest.raises(ServiceError):
            PlanService(ExecutionPlanner(cluster), num_workers=0)
        with pytest.raises(ServiceError):
            PlanService(ExecutionPlanner(cluster), max_batch_size=0)
        with pytest.raises(ServiceError):
            PlanService("not a planner")  # type: ignore[arg-type]


class TestSingleFlight:
    def test_identical_inflight_requests_share_one_future(self, cluster, tiny_tasks):
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        service = PlanService(planner, num_workers=2)
        try:
            futures = [service.submit(tiny_tasks) for _ in range(5)]
            assert all(f is futures[0] for f in futures[1:])
            assert service.pending_requests() == 1
            gate.set()
            plan = futures[0].result(timeout=30.0)
        finally:
            gate.set()
            service.close()
        assert planner.calls == 1
        assert isinstance(plan, ExecutionPlan)
        assert service.stats.count(OUTCOME_MISS) == 1
        assert service.stats.count(OUTCOME_COALESCED) == 4

    def test_distinct_requests_get_distinct_futures(self, cluster, tiny_tasks):
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        service = PlanService(planner, num_workers=2)
        try:
            one = service.submit(tiny_tasks)
            other = service.submit(tiny_tasks[:1])
            assert one is not other
            gate.set()
            assert one.result(timeout=30.0).fingerprint != other.result(
                timeout=30.0
            ).fingerprint
        finally:
            gate.set()
            service.close()
        assert planner.calls == 2

    def test_concurrent_submitters_coalesce(self, cluster, tiny_tasks):
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        service = PlanService(planner, num_workers=2)
        results = []
        errors = []

        def client():
            try:
                results.append(service.plan(tiny_tasks, timeout=30.0))
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        try:
            for thread in threads:
                thread.start()
            gate.set()
            for thread in threads:
                thread.join(timeout=30.0)
        finally:
            gate.set()
            service.close()
        assert not errors
        assert len(results) == 8
        # Every client observed the same plan, computed at most twice (a client
        # may race ahead of the inflight registration and trigger one rerun).
        assert len({id(plan) for plan in results}) <= 2
        assert planner.calls <= 2


class TestErrorsAndShutdown:
    def test_planning_error_propagates(self, cluster):
        with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
            future = service.submit([])  # planner rejects empty task lists
            with pytest.raises(ValueError):
                future.result(timeout=30.0)
            assert service.stats.errors == 1
        assert service.pending_requests() == 0

    def test_submit_after_close_rejected(self, cluster, tiny_tasks):
        service = PlanService(ExecutionPlanner(cluster), num_workers=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(tiny_tasks)

    def test_shared_cache_across_services(self, cluster, tiny_tasks):
        cache = PlanCache()
        with PlanService(ExecutionPlanner(cluster), cache=cache, num_workers=1) as a:
            plan = a.plan(tiny_tasks, timeout=30.0)
        with PlanService(ExecutionPlanner(cluster), cache=cache, num_workers=1) as b:
            assert b.plan(tiny_tasks, timeout=30.0) is plan
        assert b.stats.count(OUTCOME_HIT) == 1


class TestIncrementalPrototype:
    def test_service_accepts_incremental_planner(self, cluster, tiny_tasks):
        from repro.service import IncrementalPlanner

        incremental = IncrementalPlanner(ExecutionPlanner(cluster))
        direct = ExecutionPlanner(cluster).plan(tiny_tasks)
        with PlanService(incremental, num_workers=1) as service:
            served = service.plan(tiny_tasks, timeout=30.0)
        assert served.fingerprint == direct.fingerprint
        assert incremental.stats.plans == 1
        assert incremental.num_pooled_curves > 0

    def test_incremental_plan_forwards_fingerprint(self, cluster, tiny_tasks):
        from repro.service import IncrementalPlanner

        incremental = IncrementalPlanner(ExecutionPlanner(cluster))
        plan = incremental.plan(tiny_tasks, fingerprint="pinned")
        assert plan.fingerprint == "pinned"

    def test_rejects_non_planner(self):
        with pytest.raises(ServiceError):
            PlanService(object())  # type: ignore[arg-type]


class TestPlanServicePool:
    def test_one_service_per_topology_signature(self, tiny_tasks):
        from repro.service import PlanServicePool

        a = make_cluster(4, devices_per_node=4)
        b = make_cluster(8, devices_per_node=4)
        with PlanServicePool(lambda c: ExecutionPlanner(c)) as pool:
            service_a = pool.service_for(a)
            service_b = pool.service_for(b)
            assert service_a is not service_b
            # Structurally identical topologies share one service.
            assert pool.service_for(make_cluster(4, devices_per_node=4)) is service_a
            assert pool.num_services == 2
            # One shared cache across all services of the pool.
            assert service_a.cache is service_b.cache is pool.cache
            service_a.plan(tiny_tasks, timeout=30.0)
            fp = service_a.fingerprint(tiny_tasks)
            assert pool.cache.get(fp) is not None

    def test_single_flight_across_concurrent_jobs(self, tiny_tasks):
        """Two jobs replanning the same workload on the same topology at the
        same moment coalesce onto one planner run."""
        from repro.service import PlanServicePool

        gate = threading.Event()
        cluster = make_cluster(4, devices_per_node=4)
        planner = GatedPlanner(cluster, gate)
        with PlanServicePool(lambda c: planner, num_workers=2) as pool:
            service = pool.service_for(cluster)
            first = service.submit(tiny_tasks)
            second = service.submit(tiny_tasks)
            gate.set()
            plan_a = first.result(timeout=30.0)
            plan_b = second.result(timeout=30.0)
        assert plan_a is plan_b
        assert planner.calls == 1

    def test_closed_pool_rejects_new_topologies(self):
        from repro.service import PlanServicePool

        pool = PlanServicePool(lambda c: ExecutionPlanner(c))
        pool.close()
        with pytest.raises(ServiceError):
            pool.service_for(make_cluster(4, devices_per_node=4))


class TestShutdownUnderLoad:
    def test_close_resolves_queued_requests_instead_of_hanging(
        self, cluster, tiny_tasks, chain_task_factory
    ):
        """cancel_pending=True fails queued work fast; nothing hangs."""
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        service = PlanService(planner, num_workers=1, max_batch_size=1)
        in_flight = service.submit(tiny_tasks)
        queued = [
            service.submit([chain_task_factory(f"queued-{i}", {"lm": 2})])
            for i in range(2)
        ]

        closer = threading.Thread(
            target=service.close, kwargs={"cancel_pending": True}
        )
        closer.start()
        gate.set()  # let the in-flight solve finish
        closer.join(timeout=30.0)
        assert not closer.is_alive()

        assert in_flight.result(timeout=30.0) is not None
        for future in queued:
            assert future.done()
            with pytest.raises(ServiceError):
                future.result(timeout=0)
        assert service.pending_requests() == 0

    def test_default_close_still_plans_queued_requests(
        self, cluster, tiny_tasks, chain_task_factory
    ):
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        service = PlanService(planner, num_workers=1, max_batch_size=1)
        first = service.submit(tiny_tasks)
        second = service.submit([chain_task_factory("later", {"lm": 2})])
        closer = threading.Thread(target=service.close)
        closer.start()
        gate.set()
        closer.join(timeout=30.0)
        assert first.result(timeout=30.0) is not None
        assert second.result(timeout=30.0) is not None


class TestTimeoutCleanup:
    def test_timed_out_fingerprint_is_released(self, cluster, tiny_tasks):
        """plan(timeout=...) must not leave the fingerprint latched onto the
        abandoned future: a later identical request gets a fresh resolution."""
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        with PlanService(planner, num_workers=1) as service:
            with pytest.raises(TimeoutError):
                service.plan(tiny_tasks, timeout=0.05)
            assert service.pending_requests() == 0  # slot released
            gate.set()
            # The resubmission is served (cache hit once the abandoned
            # solve lands, or a fresh solve) — not stuck on the old future.
            plan = service.plan(tiny_tasks, timeout=30.0)
            assert plan is not None
            assert planner.calls >= 1

    def test_request_timeout_returns_error_response(self, cluster, tiny_tasks):
        gate = threading.Event()
        planner = GatedPlanner(cluster, gate)
        with PlanService(planner, num_workers=1) as service:
            response = service.request(tiny_tasks, timeout=0.05)
            assert response.outcome == "error"
            assert "timeout" in (response.error or "")
            gate.set()


class TestRequestApi:
    def test_request_served_fresh_then_cache(self, cluster, tiny_tasks):
        with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
            first = service.request(tiny_tasks, timeout=30.0)
            second = service.request(tiny_tasks, timeout=30.0)
        assert first.ok and first.tier == "fresh"
        assert second.ok and second.tier == "cache"
        assert first.plan is second.plan
        assert first.fingerprint == second.fingerprint

    def test_request_folds_planner_errors_into_the_response(self, cluster):
        with PlanService(ExecutionPlanner(cluster), num_workers=1) as service:
            response = service.request([], timeout=30.0)
        assert response.outcome == "error"
        assert response.plan is None
        assert response.error
