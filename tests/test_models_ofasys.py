"""Tests for the OFASys workload (unified encoder-decoder LM)."""

import pytest

from repro.core.contraction import contract_graph
from repro.graph.builder import MultiTaskGraphBuilder, build_unified_graph
from repro.graph.ops import FP16_BYTES
from repro.models.ofasys import (
    OFASYS_LM_DECODER_LAYERS,
    OFASYS_LM_ENCODER_LAYERS,
    OFASYS_TASKS,
    build_ofasys_task,
    ofasys_tasks,
)


class TestTaskConstruction:
    def test_seven_tasks_defined(self):
        assert len(OFASYS_TASKS) == 7
        assert len({spec.name for spec in OFASYS_TASKS}) == 7

    def test_task_structure_is_adaptor_then_lm(self):
        task = build_ofasys_task(OFASYS_TASKS[0])
        graph = task.build_graph()
        order = graph.topological_order()
        adaptor_positions = [i for i, n in enumerate(order) if "adaptor" in n]
        lm_positions = [i for i, n in enumerate(order) if ".lm_" in n]
        assert max(adaptor_positions) < min(lm_positions)

    def test_lm_depth(self):
        task = build_ofasys_task(OFASYS_TASKS[0])
        assert task.module("lm_encoder").num_operators == OFASYS_LM_ENCODER_LAYERS
        assert task.module("lm_decoder").num_operators == OFASYS_LM_DECODER_LAYERS

    def test_num_tasks_selection(self):
        assert len(ofasys_tasks(4)) == 4
        with pytest.raises(ValueError):
            ofasys_tasks(8)


class TestWorkloadProperties:
    def test_parameter_count_close_to_paper(self):
        """Tab. 1b reports 0.66B parameters for OFASys."""
        graph = build_unified_graph(ofasys_tasks(7))
        params = graph.total_param_bytes() / FP16_BYTES
        assert params == pytest.approx(0.66e9, rel=0.2)

    def test_lm_shared_by_every_task(self):
        builder = MultiTaskGraphBuilder(ofasys_tasks(7))
        shared = builder.shared_parameter_keys()
        lm_keys = [k for k in shared if k.startswith("ofasys.lm")]
        assert lm_keys
        for key in lm_keys:
            assert len(shared[key]) == 7

    def test_cross_modal_module_comparable_to_adaptors(self):
        """In OFASys the LM workload is comparable to the modality adaptors."""
        task = build_ofasys_task(OFASYS_TASKS[0])
        lm_flops = task.module("lm_encoder").flops + task.module("lm_decoder").flops
        adaptor_flops = task.module("vision_adaptor").flops
        assert 0.5 < lm_flops / adaptor_flops < 20.0

    def test_text_adaptor_is_lightweight(self):
        """The text adaptor is tiny, which is why DistMM-MT gains little."""
        text_task = build_ofasys_task(OFASYS_TASKS[2])
        vision_task = build_ofasys_task(OFASYS_TASKS[0])
        text_adaptor = text_task.module("text_adaptor").flops
        vision_adaptor = vision_task.module("vision_adaptor").flops
        assert text_adaptor < 0.25 * vision_adaptor

    def test_metalevels_follow_the_pipeline(self):
        metagraph = contract_graph(build_unified_graph(ofasys_tasks(4)))
        # adaptor -> bridge -> lm encoder -> lm decoder gives four levels.
        assert metagraph.num_levels == 4
