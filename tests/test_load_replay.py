"""Tests for the flash-crowd load-replay harness (and its CLI surface)."""

import pytest

from repro.cli import main
from repro.experiments.load_replay import (
    HIT_COST_MS,
    LoadReplayError,
    arrival_schedule,
    fleet_request_stream,
    run_load_replay,
    simulate_fleet,
)
from repro.experiments.workloads import clip_workload
from repro.obs.slo import SloTracker


class TestArrivalSchedule:
    def test_monotone_and_sized(self):
        times = arrival_schedule(100, rate=1000.0, scenario="steady", seed=3)
        assert len(times) == 100
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_deterministic_per_seed(self):
        assert arrival_schedule(50, 500.0, seed=1) == arrival_schedule(
            50, 500.0, seed=1
        )
        assert arrival_schedule(50, 500.0, seed=1) != arrival_schedule(
            50, 500.0, seed=2
        )

    def test_flash_crowd_bursts_in_the_middle(self):
        times = arrival_schedule(
            300, rate=100.0, scenario="flash-crowd", seed=0, burst_factor=10.0
        )
        warmup = times[99] - times[0]
        crowd = times[199] - times[100]
        assert crowd < warmup / 3  # the middle third arrives much faster

    def test_rejects_bad_configuration(self):
        with pytest.raises(LoadReplayError):
            arrival_schedule(10, rate=100.0, scenario="tsunami")
        with pytest.raises(LoadReplayError):
            arrival_schedule(10, rate=0.0)


class TestFleetRequestStream:
    def test_uniques_beyond_task_count(self, tiny_tasks):
        # 2 tasks yield 3 contiguous windows — more uniques than the
        # nested-prefix generator's len(tasks) cap.
        stream, unique = fleet_request_stream(tiny_tasks, 40, num_unique=5)
        assert len(stream) == 40
        assert unique == 3 > len(tiny_tasks)
        assert len({id(w) for w in stream}) == 3  # interned tuples

    def test_leads_with_full_workload(self, tiny_tasks):
        stream, _ = fleet_request_stream(tiny_tasks, 10, num_unique=3, seed=0)
        assert any(len(w) == len(tiny_tasks) for w in stream)


class TestSimulateFleet:
    def test_single_flight_coalesces_concurrent_duplicates(self):
        # Three arrivals of one fingerprint while its 10ms solve is in
        # flight: one miss, two coalesced, nobody pays a second solve.
        arrivals = [0.0, 0.001, 0.002, 0.5]
        fps = ["aa", "aa", "aa", "aa"]
        run = simulate_fleet(arrivals, fps, {"aa": 10.0}, num_shards=2)
        assert run.solves == 1
        assert run.coalesced == 2
        assert run.hits == 1  # the late arrival after completion

    def test_hits_cost_less_than_solves(self):
        arrivals = [0.0, 1.0]
        run = simulate_fleet(arrivals, ["aa", "aa"], {"aa": 10.0}, num_shards=1)
        assert run.p99_ms == pytest.approx(10.0)
        assert run.p50_ms == pytest.approx(HIT_COST_MS)

    def test_sharding_parallelizes_backlogged_solves(self):
        # 8 distinct fingerprints arriving at once: 1 shard serializes all
        # eight solves, 8 shards (if routing spreads them) overlap them.
        fps = [f"{i:x}" * 16 for i in range(8)]
        arrivals = [0.0] * 8
        costs = {fp: 10.0 for fp in fps}
        one = simulate_fleet(arrivals, fps, costs, num_shards=1)
        many = simulate_fleet(arrivals, fps, costs, num_shards=8)
        assert one.makespan_seconds == pytest.approx(0.08)
        assert many.makespan_seconds < one.makespan_seconds

    def test_records_into_slo_tracker(self):
        slo = SloTracker()
        simulate_fleet([0.0, 0.5], ["aa", "aa"], {"aa": 5.0}, 1, slo=slo)
        report = slo.report()
        assert report.count == 2
        assert report.availability == 1.0


class TestRunLoadReplay:
    def test_small_campaign_verifies_and_scales(self):
        result = run_load_replay(
            clip_workload(4, 8),
            num_requests=60,
            num_unique=8,
            rate=20000.0,
            shard_counts=(1, 4),
            real_shards=2,
            num_clients=2,
            seed=5,
        )
        assert result.num_requests == 60
        assert result.failed_requests == 0
        assert result.payload_match_rate == 1.0
        assert result.scaling_ratio(1, 4) > 1.0
        assert sum(result.shard_census) == 60

    def test_rejects_unknown_scenario(self):
        with pytest.raises(LoadReplayError):
            run_load_replay(clip_workload(2, 8), scenario="tsunami")


class TestFleetBenchCli:
    def test_fleet_bench_prints_replay_table(self, capsys):
        exit_code = main(
            [
                "fleet-bench",
                "--model", "multitask-clip",
                "--tasks", "3",
                "--gpus", "8",
                "--requests", "40",
                "--unique", "6",
                "--shards", "2",
                "--slo",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "plan-service fleet replay" in output
        assert "simulated scaling 1->4 shards" in output
        assert "payload match" in output

    def test_fleet_bench_rejects_bad_arguments(self, capsys):
        for argv in (
            ["fleet-bench", "--model", "multitask-clip", "--requests", "0"],
            ["fleet-bench", "--model", "multitask-clip", "--rate", "0"],
            ["fleet-bench", "--model", "multitask-clip", "--shards", "0"],
            ["fleet-bench", "--model", "multitask-clip", "--scenario", "nope"],
            ["fleet-bench", "--model", "multitask-clip", "--clients", "0"],
        ):
            assert main(argv) != 0
        capsys.readouterr()

    def test_serve_bench_shards_passthrough(self, capsys):
        exit_code = main(
            [
                "serve-bench",
                "--model", "multitask-clip",
                "--tasks", "3",
                "--gpus", "8",
                "--requests", "30",
                "--unique", "5",
                "--shards", "2",
                "--rate", "15000",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "plan-service fleet replay" in output
