"""``repro bench list|run|compare`` CLI paths, including regression gating."""

import json
from pathlib import Path

import pytest

from repro.bench.result import BenchResult
from repro.cli import main

SUITE_DIR = str(Path(__file__).resolve().parents[1] / "benchmarks")

#: Cheapest registered benchmark — the CLI tests run this one for speed.
FAST_BENCH = "tab1b_model_configs"


@pytest.fixture(autouse=True)
def isolated_reports(tmp_path, monkeypatch):
    """Keep report side effects of CLI runs out of the checkout."""
    monkeypatch.setenv("REPRO_REPORT_DIR", str(tmp_path / "reports"))


def run_cli(*argv):
    return main(list(argv))


class TestBenchList:
    def test_list_table(self, capsys):
        assert run_cli("bench", "list", "--suite", SUITE_DIR) == 0
        out = capsys.readouterr().out
        assert FAST_BENCH in out
        assert "fig08_end_to_end" in out

    def test_list_json_and_tag_filter(self, capsys):
        assert (
            run_cli("bench", "list", "--suite", SUITE_DIR, "--tag", "smoke", "--json")
            == 0
        )
        listing = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in listing}
        assert FAST_BENCH in names
        assert all("smoke" in entry["tags"] for entry in listing)

    def test_list_unknown_name_fails(self, capsys):
        assert run_cli("bench", "list", "--suite", SUITE_DIR, "--name", "ghost") == 1
        assert "unknown benchmark" in capsys.readouterr().err


class TestBenchRun:
    def test_run_writes_schema_conformant_json(self, tmp_path, capsys):
        output = tmp_path / "results"
        code = run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(output), "--json",
        )
        assert code == 0
        path = output / f"BENCH_{FAST_BENCH}.json"
        assert path.is_file()
        result = BenchResult.load(path)  # validates the schema
        assert result.name == FAST_BENCH
        assert result.metrics
        # --json prints the same documents to stdout.
        printed = json.loads(capsys.readouterr().out)
        assert printed[0]["name"] == FAST_BENCH
        assert printed[0]["metrics"] == {
            name: metric.to_dict() for name, metric in result.metrics.items()
        }

    def test_run_writes_report_rendering(self, tmp_path, monkeypatch):
        report_dir = tmp_path / "reports"
        monkeypatch.setenv("REPRO_REPORT_DIR", str(report_dir))
        assert run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(tmp_path / "out"),
        ) == 0
        report = report_dir / f"BENCH_{FAST_BENCH}.txt"
        assert report.is_file()
        assert f"BENCH {FAST_BENCH}" in report.read_text()

    def test_run_tag_filter(self, tmp_path, capsys):
        """--tag selects by registry tag; 'models' matches only tab1b."""
        output = tmp_path / "results"
        code = run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--tag", "models", "--output", str(output), "--json",
        )
        assert code == 0
        written = sorted(p.name for p in output.glob("BENCH_*.json"))
        assert written == [f"BENCH_{FAST_BENCH}.json"]
        printed = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in printed} == {FAST_BENCH}
        assert all("smoke" in entry["tags"] for entry in printed)

    def test_run_json_with_baseline_is_one_document(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        assert run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(baseline),
        ) == 0
        capsys.readouterr()
        code = run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(tmp_path / "out"),
            "--json", "--baseline", str(baseline), "--fail-on-regress",
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)  # whole stdout parses
        assert document["results"][0]["name"] == FAST_BENCH
        assert document["comparison"]["passed"] is True

    def test_run_no_match_fails(self, capsys):
        assert (
            run_cli("bench", "run", "--suite", SUITE_DIR, "--tag", "no-such-tag") == 1
        )
        assert "no benchmarks match" in capsys.readouterr().err

    def test_run_gates_against_baseline(self, tmp_path, capsys):
        current = tmp_path / "current"
        assert run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(current),
        ) == 0
        # A baseline claiming fewer parameters makes the current run regress.
        baseline_dir = tmp_path / "baseline"
        result = BenchResult.load(current / f"BENCH_{FAST_BENCH}.json")
        shrunk = {
            name: type(metric)(
                value=metric.value * 0.5,
                unit=metric.unit,
                higher_is_better=metric.higher_is_better,
                regression_threshold=metric.regression_threshold,
            )
            for name, metric in result.metrics.items()
        }
        BenchResult(name=result.name, metrics=shrunk).save(baseline_dir)
        capsys.readouterr()
        code = run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(tmp_path / "again"),
            "--baseline", str(baseline_dir), "--fail-on-regress",
        )
        assert code == 2
        assert "FAIL" in capsys.readouterr().err


class TestBenchCompare:
    def make_dirs(self, tmp_path, baseline_value, current_value):
        from repro.bench.result import Metric

        baseline_dir, current_dir = tmp_path / "base", tmp_path / "cur"
        BenchResult(
            name="demo", metrics={"time_ms": Metric(baseline_value, "ms")}
        ).save(baseline_dir)
        BenchResult(
            name="demo", metrics={"time_ms": Metric(current_value, "ms")}
        ).save(current_dir)
        return str(baseline_dir), str(current_dir)

    def test_compare_pass(self, tmp_path, capsys):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 105.0)
        code = run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--fail-on-regress",
        )
        assert code == 0
        assert "ok=1" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 150.0)
        code = run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--fail-on-regress",
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "FAIL" in captured.err

    def test_compare_without_gate_reports_only(self, tmp_path):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 150.0)
        assert run_cli(
            "bench", "compare", "--baseline", baseline_dir, "--current", current_dir
        ) == 0

    def test_compare_threshold_override(self, tmp_path):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 110.0)
        assert run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--fail-on-regress",
        ) == 0
        assert run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--fail-on-regress", "--threshold", "0.05",
        ) == 2

    def test_compare_json_output(self, tmp_path, capsys):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 150.0)
        run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--json",
        )
        document = json.loads(capsys.readouterr().out)
        assert document["passed"] is False
        assert document["counts"] == {"regressed": 1}

    def test_compare_writes_markdown_summary(self, tmp_path):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 150.0)
        summary = tmp_path / "step_summary.md"
        run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--summary-file", str(summary),
        )
        text = summary.read_text()
        assert "### Benchmark comparison — ❌ failed" in text
        assert "| demo | time_ms |" in text
        assert "regressed" in text
        # Step-summary semantics: repeated invocations append.
        run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--summary-file", str(summary),
        )
        assert summary.read_text().count("### Benchmark comparison") == 2

    def test_compare_summary_reports_pass(self, tmp_path):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 101.0)
        summary = tmp_path / "summary.md"
        run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", current_dir, "--summary-file", str(summary),
        )
        text = summary.read_text()
        assert "✅ passed" in text
        assert "**Failures**" not in text

    def test_run_with_baseline_writes_summary(self, tmp_path):
        current = tmp_path / "current"
        assert run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(current),
        ) == 0
        summary = tmp_path / "summary.md"
        assert run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(tmp_path / "again"),
            "--baseline", str(current), "--summary-file", str(summary),
        ) == 0
        assert f"| {FAST_BENCH} |" in summary.read_text()

    def test_run_summary_without_baseline_warns(self, tmp_path, capsys):
        summary = tmp_path / "summary.md"
        assert run_cli(
            "bench", "run", "--suite", SUITE_DIR,
            "--name", FAST_BENCH, "--output", str(tmp_path / "out"),
            "--summary-file", str(summary),
        ) == 0
        assert "--summary-file has no comparison" in capsys.readouterr().err
        assert not summary.exists()

    def test_compare_missing_directories(self, tmp_path, capsys):
        baseline_dir, current_dir = self.make_dirs(tmp_path, 100.0, 100.0)
        assert run_cli(
            "bench", "compare", "--baseline", str(tmp_path / "nope"),
            "--current", current_dir,
        ) == 1
        assert run_cli(
            "bench", "compare", "--baseline", baseline_dir,
            "--current", str(tmp_path / "nope"),
        ) == 1


class TestCommittedBaseline:
    def test_committed_baseline_matches_smoke_set(self):
        """The committed baseline and the smoke tag must stay in lockstep.

        compare_results deliberately skips baseline benchmarks absent from a
        (partial) current run, so a benchmark silently dropped from the smoke
        set would otherwise vanish from the CI gate without failing it; this
        test is the backstop that forces a baseline refresh instead.
        """
        from repro.bench import REGISTRY, discover, load_results

        baseline = load_results(Path(SUITE_DIR) / "baselines")
        assert baseline, "committed baseline is empty"
        discover(SUITE_DIR)
        smoke = {spec.name for spec in REGISTRY.select(tags=["smoke"])}
        missing = smoke - set(baseline)
        assert not missing, f"smoke benchmarks missing from the baseline: {missing}"
        stale = set(baseline) - smoke
        assert not stale, f"baseline entries no longer in the smoke set: {stale}"
