"""Tests for the comparison harness."""

import pytest

from repro.experiments.harness import (
    ComparisonResult,
    run_comparison,
    run_single_system,
)
from repro.experiments.workloads import WorkloadSpec, clip_workload


@pytest.fixture(scope="module")
def small_comparison():
    """A small but real comparison reused across the tests of this module."""
    workload = clip_workload(2, 8)
    return run_comparison(workload, systems=("spindle", "deepspeed", "spindle-optimus"))


class TestRunComparison:
    def test_all_requested_systems_present(self, small_comparison):
        assert set(small_comparison.results) == {
            "spindle",
            "deepspeed",
            "spindle-optimus",
        }

    def test_speedups_relative_to_deepspeed(self, small_comparison):
        speedups = small_comparison.speedups()
        assert speedups["deepspeed"] == pytest.approx(1.0)
        assert speedups["spindle"] == pytest.approx(
            small_comparison.iteration_time("deepspeed")
            / small_comparison.iteration_time("spindle")
        )

    def test_best_system_is_fastest(self, small_comparison):
        best = small_comparison.best_system
        assert small_comparison.iteration_time(best) == min(
            r.iteration_time for r in small_comparison.results.values()
        )

    def test_rows_sorted_by_time(self, small_comparison):
        rows = small_comparison.as_rows()
        times = [row[1] for row in rows]
        assert times == sorted(times)

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            run_comparison(clip_workload(2, 8), systems=("alpa",))

    def test_reference_falls_back_when_missing(self):
        result = run_comparison(clip_workload(2, 8), systems=("spindle-optimus",))
        assert result.reference == "spindle-optimus"
        assert result.speedup("spindle-optimus") == pytest.approx(1.0)


class TestRunSingleSystem:
    def test_returns_system_with_plan(self):
        system, result = run_single_system(clip_workload(2, 8), "spindle")
        assert result.iteration_time > 0
        assert system.last_plan is not None

    def test_kwargs_forwarded(self):
        system, _ = run_single_system(
            clip_workload(2, 8), "spindle", placement_strategy="sequential"
        )
        assert system.placement_strategy == "sequential"


class TestComparisonResultUnit:
    def test_manual_construction(self):
        from repro.runtime.results import IterationResult, TimeBreakdown
        from repro.runtime.trace import UtilizationTrace

        def result(time):
            return IterationResult(
                iteration_time=time,
                breakdown=TimeBreakdown(time, 0.0, 0.0),
                trace=UtilizationTrace(num_devices=1, peak_flops_per_device=1.0),
            )

        comparison = ComparisonResult(
            workload=WorkloadSpec(model="multitask-clip", num_tasks=1, num_gpus=8),
            results={"deepspeed": result(2.0), "spindle": result(1.0)},
        )
        assert comparison.speedup("spindle") == pytest.approx(2.0)
        assert comparison.best_system == "spindle"
