"""Unit tests for the parameter device group pool (§3.6 step 3)."""

import pytest

from repro.core.planner import ExecutionPlanner
from repro.runtime.param_groups import ParameterDeviceGroupPool


@pytest.fixture
def plan(two_island_cluster, tiny_tasks):
    return ExecutionPlanner(two_island_cluster).plan(tiny_tasks)


class TestParameterDeviceGroupPool:
    def test_every_shared_key_is_in_exactly_one_group(self, plan, tiny_tasks):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        all_keys = [key for group in pool.groups for key in group.param_keys]
        assert len(all_keys) == len(set(all_keys))
        expected_keys = {
            op.param_key
            for task in tiny_tasks
            for op in task.operators
            if op.param_key is not None and op.param_bytes > 0
        }
        assert set(all_keys) == expected_keys

    def test_group_devices_cover_placements(self, plan):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        # Devices referenced by groups must exist in the cluster.
        for group in pool.groups:
            assert all(0 <= d < plan.cluster.num_devices for d in group.devices)
            assert group.devices == tuple(sorted(group.devices))

    def test_shared_lm_parameters_span_both_tasks_devices(self, plan):
        """Keys shared by the two toy tasks form groups that include devices of
        MetaOps from both tasks."""
        pool = ParameterDeviceGroupPool.from_plan(plan)
        lm_groups = [
            group
            for group in pool.groups
            if any(key.startswith("shared.lm") for key in group.param_keys)
        ]
        assert lm_groups
        task_devices: dict[str, set[int]] = {}
        for wave in plan.waves:
            for entry in wave.entries:
                metaop = plan.metagraph.metaop(entry.metaop_index)
                if metaop.op_type == "lm_layer":
                    task_devices.setdefault(metaop.task, set()).update(
                        plan.placement.devices_for(wave.index, entry.metaop_index)
                    )
        union = set().union(*task_devices.values())
        grouped = set().union(*(set(g.devices) for g in lm_groups))
        assert grouped == union

    def test_total_bytes_counts_each_key_once(self, plan, tiny_tasks):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        key_bytes = {}
        for task in tiny_tasks:
            for op in task.operators:
                if op.param_key is not None and op.param_bytes > 0:
                    key_bytes[op.param_key] = op.param_bytes
        assert pool.total_bytes == pytest.approx(sum(key_bytes.values()))

    def test_sync_time_positive_for_multi_device_groups(self, plan):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        if pool.groups_needing_sync():
            assert pool.sync_time(plan.cluster) > 0

    def test_sync_time_overlap_reduces_cost(self, plan):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        full = pool.sync_time(plan.cluster, overlap_fraction=0.0)
        half = pool.sync_time(plan.cluster, overlap_fraction=0.5)
        assert half == pytest.approx(0.5 * full)
        with pytest.raises(ValueError):
            pool.sync_time(plan.cluster, overlap_fraction=1.0)

    def test_group_for_key(self, plan):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        some_key = pool.groups[0].param_keys[0]
        group = pool.group_for_key(some_key)
        assert group is pool.groups[0]
        assert pool.group_for_key("does.not.exist") is None

    def test_single_device_groups_need_no_sync(self, plan):
        pool = ParameterDeviceGroupPool.from_plan(plan)
        for group in pool.groups:
            if group.group_size == 1:
                assert not group.needs_sync
