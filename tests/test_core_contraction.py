"""Unit tests for graph contraction (§3.1)."""

import pytest

from repro.core.contraction import can_contract, contract_graph
from repro.graph.graph import ComputationGraph
from tests.conftest import make_layer_op


def chain(graph, names, **kwargs):
    for name in names:
        graph.add_operator(make_layer_op(name, **kwargs))
    for src, dst in zip(names, names[1:]):
        graph.add_flow(src, dst)


class TestCanContract:
    def test_identical_consecutive_ops(self):
        graph = ComputationGraph()
        chain(graph, ["a", "b"])
        assert can_contract(graph, "a", "b")

    def test_different_type_blocks_contraction(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("a", op_type="text_layer"))
        graph.add_operator(make_layer_op("b", op_type="vision_layer"))
        graph.add_flow("a", "b")
        assert not can_contract(graph, "a", "b")

    def test_different_shape_blocks_contraction(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("a", seq_len=64))
        graph.add_operator(make_layer_op("b", seq_len=128))
        graph.add_flow("a", "b")
        assert not can_contract(graph, "a", "b")

    def test_branching_blocks_contraction(self):
        graph = ComputationGraph()
        chain(graph, ["a", "b"])
        graph.add_operator(make_layer_op("c"))
        graph.add_flow("a", "c")  # a now has out-degree 2
        assert not can_contract(graph, "a", "b")


class TestContractGraph:
    def test_single_chain_contracts_to_one_metaop(self):
        graph = ComputationGraph()
        chain(graph, [f"l{i}" for i in range(6)])
        metagraph = contract_graph(graph)
        assert metagraph.num_metaops == 1
        assert metagraph.metaop(0).num_operators == 6
        assert metagraph.metaop(0).level == 0

    def test_operator_count_is_preserved(self, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        assert metagraph.num_operators == tiny_graph.num_operators

    def test_heterogeneous_chain_splits_at_type_change(self):
        graph = ComputationGraph()
        chain(graph, ["a0", "a1"], op_type="audio_layer")
        chain(graph, ["t0", "t1", "t2"], op_type="text_layer")
        graph.add_flow("a1", "t0")
        metagraph = contract_graph(graph)
        assert metagraph.num_metaops == 2
        sizes = sorted(m.num_operators for m in metagraph.metaops.values())
        assert sizes == [2, 3]

    def test_levels_follow_dependencies(self, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        for (src, dst) in metagraph.edges:
            assert metagraph.metaop(src).level < metagraph.metaop(dst).level

    def test_fig3_style_example(self):
        """Two tasks (audio->text->lm, vision->text->lm with other shapes)."""
        graph = ComputationGraph()
        chain(graph, ["al.a0", "al.a1", "al.a2"], task="al", op_type="audio_layer",
              batch=8, seq_len=229)
        chain(graph, ["al.t0", "al.t1"], task="al", op_type="text_layer",
              batch=8, seq_len=77)
        chain(graph, ["al.l0", "al.l1", "al.l2"], task="al", op_type="lm_layer",
              batch=8, seq_len=512)
        graph.add_flow("al.a2", "al.l0")
        graph.add_flow("al.t1", "al.l0")
        chain(graph, ["vl.t0", "vl.t1"], task="vl", op_type="text_layer",
              batch=4, seq_len=77)
        chain(graph, ["vl.v0", "vl.v1"], task="vl", op_type="vision_layer",
              batch=4, seq_len=257)
        chain(graph, ["vl.w0", "vl.w1"], task="vl", op_type="vision_layer",
              batch=4, seq_len=197)
        chain(graph, ["vl.l0", "vl.l1", "vl.l2"], task="vl", op_type="lm_layer",
              batch=4, seq_len=512)
        graph.add_flow("vl.v1", "vl.w0")
        graph.add_flow("vl.t1", "vl.l0")
        graph.add_flow("vl.w1", "vl.l0")
        metagraph = contract_graph(graph)
        # Mirrors Fig. 3: 7 MetaOps -- audio, text and LM for the audio task;
        # text, two vision MetaOps (different resolutions) and LM for the
        # vision task.  The two text MetaOps differ in batch size.
        assert metagraph.num_metaops == 7
        assert metagraph.num_operators == graph.num_operators
        # Encoders sit at level 0; each LM MetaOp is one level deeper than its
        # deepest predecessor (level 1 for the audio task, level 2 for the
        # vision task whose tower has two stages).
        lm_levels = sorted(
            m.level for m in metagraph.metaops.values() if m.op_type == "lm_layer"
        )
        assert lm_levels == [1, 2]

    def test_branching_keeps_tower_structure(self, contrastive_task):
        metagraph = contract_graph(contrastive_task.build_graph())
        # vision tower, text tower and the loss stay separate MetaOps.
        assert metagraph.num_metaops == 3
        loss = [m for m in metagraph.metaops.values() if m.op_type == "contrastive_loss"]
        assert len(loss) == 1
        assert loss[0].level == 1

    def test_levels_not_assigned_when_disabled(self, tiny_graph):
        metagraph = contract_graph(tiny_graph, assign_levels=False)
        assert all(m.level == -1 for m in metagraph.metaops.values())

    def test_edge_volumes_survive_contraction(self):
        graph = ComputationGraph()
        chain(graph, ["a0", "a1"], op_type="audio_layer")
        chain(graph, ["b0", "b1"], op_type="text_layer")
        graph.add_flow("a1", "b0", volume_bytes=77.0)
        metagraph = contract_graph(graph)
        assert metagraph.edge_volume(0, 1) == pytest.approx(77.0)

    def test_contraction_is_batch_size_sensitive(self):
        graph = ComputationGraph()
        graph.add_operator(make_layer_op("a", batch=8))
        graph.add_operator(make_layer_op("b", batch=4, seq_len=64))
        graph.add_flow("a", "b")
        metagraph = contract_graph(graph)
        assert metagraph.num_metaops == 2
