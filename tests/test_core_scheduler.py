"""Unit tests for the wavefront scheduler (§3.4, Algorithm 1)."""

import pytest

from repro.core.allocator import ResourceAllocator
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator, ScalingCurve
from repro.core.metagraph import MetaOp
from repro.core.plan import ASLTuple, LevelAllocation
from repro.core.scheduler import SchedulerError, WavefrontScheduler
from repro.costmodel.profiler import ProfileSample, SyntheticProfiler
from tests.conftest import make_layer_op


def make_metaop(index, num_ops, batch=8):
    ops = [
        make_layer_op(f"m{index}.{i}", op_type=f"type{index}", batch=batch)
        for i in range(num_ops)
    ]
    return MetaOp(index=index, operators=ops, level=0)


def ideal_curve(unit_time=1.0, max_devices=8):
    points = [ProfileSample(n, unit_time / n) for n in (1, 2, 4, max_devices)]
    return ScalingCurve(points)


def allocation_for(plan: dict[int, list[ASLTuple]], c_star: float = 1.0, level: int = 0):
    return LevelAllocation(level=level, c_star=c_star, continuous={}, plan=plan)


class TestScheduleLevelBasics:
    def test_single_metaop_single_wave(self):
        metaop = make_metaop(0, 4)
        curves = {0: ideal_curve()}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for({0: [ASLTuple(n_devices=8, layers=4)]})
        waves, end = scheduler.schedule_level(allocation, [metaop], curves)
        assert len(waves) == 1
        assert waves[0].entries[0].layers == 4
        assert waves[0].entries[0].n_devices == 8
        assert end == pytest.approx(waves[0].duration)

    def test_all_layers_scheduled_exactly_once(self):
        metaops = [make_metaop(0, 10), make_metaop(1, 6), make_metaop(2, 3)]
        curves = {i: ideal_curve(unit_time=1.0 + i) for i in range(3)}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for(
            {
                0: [ASLTuple(4, 7), ASLTuple(2, 3)],
                1: [ASLTuple(2, 6)],
                2: [ASLTuple(1, 3)],
            }
        )
        waves, _ = scheduler.schedule_level(allocation, metaops, curves)
        for metaop in metaops:
            scheduled = sum(
                e.layers
                for w in waves
                for e in w.entries
                if e.metaop_index == metaop.index
            )
            assert scheduled == metaop.num_operators

    def test_capacity_never_exceeded(self):
        metaops = [make_metaop(i, 8) for i in range(5)]
        curves = {i: ideal_curve() for i in range(5)}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for(
            {i: [ASLTuple(4, 5), ASLTuple(2, 3)] for i in range(5)}
        )
        waves, _ = scheduler.schedule_level(allocation, metaops, curves)
        for wave in waves:
            assert wave.devices_used <= 8
            wave.validate(8)

    def test_wave_count_bounded_by_twice_metaops(self):
        """Each wave consumes at least one ASL-tuple, of which there are <= 2L."""
        metaops = [make_metaop(i, 12) for i in range(4)]
        curves = {i: ideal_curve(unit_time=0.5 + 0.3 * i) for i in range(4)}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for(
            {i: [ASLTuple(2, 9), ASLTuple(1, 3)] for i in range(4)}
        )
        waves, _ = scheduler.schedule_level(allocation, metaops, curves)
        assert len(waves) <= 2 * len(metaops)

    def test_start_time_offsets_are_contiguous(self):
        metaops = [make_metaop(0, 8), make_metaop(1, 8)]
        curves = {0: ideal_curve(1.0), 1: ideal_curve(2.0)}
        scheduler = WavefrontScheduler(num_devices=4)
        allocation = allocation_for(
            {0: [ASLTuple(2, 8)], 1: [ASLTuple(2, 8)]}
        )
        waves, end = scheduler.schedule_level(
            allocation, metaops, curves, start_time=5.0
        )
        assert waves[0].start == pytest.approx(5.0)
        for prev, nxt in zip(waves, waves[1:]):
            assert nxt.start == pytest.approx(prev.end)
        assert end == pytest.approx(waves[-1].end)


class TestWaveCrafting:
    def test_wave_packs_as_many_devices_as_possible(self):
        metaops = [make_metaop(0, 4), make_metaop(1, 4), make_metaop(2, 4)]
        curves = {i: ideal_curve() for i in range(3)}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for(
            {0: [ASLTuple(4, 4)], 1: [ASLTuple(2, 4)], 2: [ASLTuple(2, 4)]}
        )
        waves, _ = scheduler.schedule_level(allocation, metaops, curves)
        assert waves[0].devices_used == 8
        assert len(waves[0].entries) == 3

    def test_resource_extension_fills_idle_devices(self):
        """A lone remaining MetaOp is extended to use the idle devices."""
        metaop = make_metaop(0, 8, batch=8)
        curves = {0: ideal_curve()}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for({0: [ASLTuple(2, 8)]})
        waves, _ = scheduler.schedule_level(allocation, [metaop], curves)
        # The 2-device tuple is extended to occupy the full cluster.
        assert waves[0].entries[0].n_devices == 8

    def test_time_span_alignment_slices_longer_tuples(self):
        """The shortest tuple finishes entirely; longer ones are sliced."""
        metaops = [make_metaop(0, 16), make_metaop(1, 2)]
        curves = {0: ideal_curve(1.0), 1: ideal_curve(1.0)}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for(
            {0: [ASLTuple(4, 16)], 1: [ASLTuple(4, 2)]}
        )
        waves, _ = scheduler.schedule_level(allocation, metaops, curves)
        first = waves[0]
        short_entry = first.entry_for(1)
        long_entry = first.entry_for(0)
        assert short_entry.layers == 2
        assert long_entry.layers < 16
        # Durations inside the wave are aligned (within one layer's time).
        assert long_entry.duration <= first.duration + 1e-9

    def test_operator_offsets_advance_with_slices(self):
        metaop = make_metaop(0, 10)
        other = make_metaop(1, 2)
        curves = {0: ideal_curve(1.0), 1: ideal_curve(1.0)}
        scheduler = WavefrontScheduler(num_devices=8)
        allocation = allocation_for(
            {0: [ASLTuple(4, 10)], 1: [ASLTuple(4, 2)]}
        )
        waves, _ = scheduler.schedule_level(allocation, [metaop, other], curves)
        offsets = [
            (w.index, e.operator_offset, e.layers)
            for w in waves
            for e in w.entries
            if e.metaop_index == 0
        ]
        cursor = 0
        for _, offset, layers in offsets:
            assert offset == cursor
            cursor += layers
        assert cursor == 10


class TestScheduleMultiLevel:
    def test_levels_execute_back_to_back(self, cluster16, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        curves = ScalabilityEstimator(SyntheticProfiler(cluster16)).estimate(metagraph)
        allocator = ResourceAllocator(16)
        allocations = allocator.allocate(metagraph, curves)
        scheduler = WavefrontScheduler(16)
        metaops_by_level = {
            level: metagraph.metaops_at_level(level) for level in allocations
        }
        schedule = scheduler.schedule(allocations, metaops_by_level, curves)
        schedule.validate(16)
        # Waves of a later level never start before all earlier-level waves end.
        for level in range(1, metagraph.num_levels):
            earlier_end = max(w.end for w in schedule.waves if w.level < level)
            for wave in schedule.waves_at_level(level):
                assert wave.start >= earlier_end - 1e-9
        # Every operator of every MetaOp is scheduled.
        for metaop in metagraph.metaops.values():
            assert schedule.scheduled_layers(metaop.index) == metaop.num_operators

    def test_makespan_is_last_wave_end(self, cluster16, tiny_graph):
        metagraph = contract_graph(tiny_graph)
        curves = ScalabilityEstimator(SyntheticProfiler(cluster16)).estimate(metagraph)
        allocations = ResourceAllocator(16).allocate(metagraph, curves)
        scheduler = WavefrontScheduler(16)
        metaops_by_level = {
            level: metagraph.metaops_at_level(level) for level in allocations
        }
        schedule = scheduler.schedule(allocations, metaops_by_level, curves)
        assert schedule.makespan == pytest.approx(max(w.end for w in schedule.waves))


class TestSchedulerErrors:
    def test_rejects_invalid_device_count(self):
        with pytest.raises(SchedulerError):
            WavefrontScheduler(num_devices=0)

    def test_rejects_incomplete_allocation(self):
        metaop = make_metaop(0, 8)
        curves = {0: ideal_curve()}
        scheduler = WavefrontScheduler(num_devices=4)
        allocation = allocation_for({0: [ASLTuple(2, 5)]})  # only 5 of 8 layers
        with pytest.raises(SchedulerError):
            scheduler.schedule_level(allocation, [metaop], curves)

    def test_rejects_all_dummy_allocation(self):
        metaop = make_metaop(0, 4)
        curves = {0: ideal_curve()}
        scheduler = WavefrontScheduler(num_devices=4)
        allocation = allocation_for({0: [ASLTuple(0, 4)]})
        with pytest.raises(SchedulerError):
            scheduler.schedule_level(allocation, [metaop], curves)
