"""Tests for execution plan serialization."""

import json

import pytest

from repro.core.planner import ExecutionPlanner
from repro.core.serialization import (
    PLAN_FORMAT_VERSION,
    SerializationError,
    load_plan_document,
    plan_to_dict,
    plan_to_json,
    save_plan,
    validate_plan_document,
)


@pytest.fixture
def plan(two_island_cluster, tiny_tasks):
    return ExecutionPlanner(two_island_cluster).plan(tiny_tasks)


class TestPlanToDict:
    def test_document_structure(self, plan):
        document = plan_to_dict(plan)
        assert document["format_version"] == PLAN_FORMAT_VERSION
        assert document["cluster"]["num_nodes"] == 2
        assert len(document["metaops"]) == plan.metagraph.num_metaops
        assert len(document["waves"]) == plan.schedule.num_waves
        assert document["makespan"] == pytest.approx(plan.schedule.makespan)

    def test_wave_entries_carry_placement(self, plan):
        document = plan_to_dict(plan)
        for wave in document["waves"]:
            for entry in wave["entries"]:
                assert len(entry["devices"]) == entry["n_devices"]

    def test_all_operators_accounted_for(self, plan):
        document = plan_to_dict(plan)
        layers_per_metaop: dict[int, int] = {}
        for wave in document["waves"]:
            for entry in wave["entries"]:
                layers_per_metaop[entry["metaop"]] = (
                    layers_per_metaop.get(entry["metaop"], 0) + entry["layers"]
                )
        for metaop in document["metaops"]:
            assert layers_per_metaop[metaop["index"]] == metaop["num_operators"]

    def test_json_round_trip(self, plan):
        document = json.loads(plan_to_json(plan))
        validate_plan_document(document)


class TestSaveAndLoad:
    def test_save_and_load(self, plan, tmp_path):
        path = save_plan(plan, tmp_path / "plans" / "plan.json")
        assert path.exists()
        document = load_plan_document(path)
        assert document["format_version"] == PLAN_FORMAT_VERSION

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_plan_document(path)


class TestValidation:
    def test_unknown_version_rejected(self, plan):
        document = plan_to_dict(plan)
        document["format_version"] = 999
        with pytest.raises(SerializationError):
            validate_plan_document(document)

    def test_missing_field_rejected(self, plan):
        document = plan_to_dict(plan)
        del document["waves"]
        with pytest.raises(SerializationError):
            validate_plan_document(document)

    def test_unknown_metaop_rejected(self, plan):
        document = plan_to_dict(plan)
        document["waves"][0]["entries"][0]["metaop"] = 999
        with pytest.raises(SerializationError):
            validate_plan_document(document)

    def test_device_count_mismatch_rejected(self, plan):
        document = plan_to_dict(plan)
        document["waves"][0]["entries"][0]["devices"] = [0]
        document["waves"][0]["entries"][0]["n_devices"] = 2
        with pytest.raises(SerializationError):
            validate_plan_document(document)

    def test_capacity_violation_rejected(self, plan):
        document = plan_to_dict(plan)
        document["cluster"]["num_devices"] = 1
        with pytest.raises(SerializationError):
            validate_plan_document(document)

    def test_legacy_documents_without_num_devices_validate(self, plan):
        """Rectangular documents from older writers derive the device count."""
        document = plan_to_dict(plan)
        del document["cluster"]["num_devices"]
        validate_plan_document(document)
        document["cluster"]["num_nodes"] = 1
        document["cluster"]["devices_per_node"] = 1
        with pytest.raises(SerializationError):
            validate_plan_document(document)
