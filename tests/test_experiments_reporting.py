"""Tests for the plain-text reporting helpers."""

import pytest

from repro.experiments.reporting import (
    format_gib,
    format_markdown_table,
    format_milliseconds,
    format_series,
    format_speedup,
    format_table,
)


class TestScalarFormatting:
    def test_milliseconds(self):
        assert format_milliseconds(0.1234) == "123.4 ms"

    def test_speedup(self):
        assert format_speedup(1.456) == "1.46x"

    def test_gib(self):
        assert format_gib(2 * 1024**3) == "2.0 GiB"


class TestTableFormatting:
    def test_plain_table_alignment(self):
        text = format_table(
            ["system", "time"],
            [["spindle", "10 ms"], ["deepspeed", "17 ms"]],
            title="Fig. 8",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig. 8"
        assert "system" in lines[1] and "time" in lines[1]
        assert len(lines) == 5
        # All data rows share the header's column separator position.
        assert lines[3].index("|") == lines[1].index("|")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestSeriesFormatting:
    def test_series_subsamples_long_inputs(self):
        points = [(float(i), float(i * 2)) for i in range(200)]
        text = format_series(points, "t", "flops", max_points=10)
        assert len(text.splitlines()) <= 25

    def test_empty_series(self):
        assert "empty" in format_series([], "t", "y")
