"""Cluster events, timelines and the seeded scenario generators."""

import pytest

from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC
from repro.elastic.events import (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    NODE_JOIN,
    NODE_LEAVE,
    STRAGGLER_CLEAR,
    STRAGGLER_ONSET,
    ClusterEvent,
    ElasticEventError,
    EventTimeline,
    flash_crowd_timeline,
    island_outage_timeline,
    merge_timelines,
    random_failure_timeline,
    gpu_straggler_timeline,
    rolling_straggler_timeline,
)


class TestClusterEvent:
    def test_failure_and_recovery_need_node_and_device(self):
        event = ClusterEvent(DEVICE_FAILURE, at_iteration=5, node=1, device=3)
        assert event.describe() == "device_failure(n1:d3)"
        with pytest.raises(ElasticEventError):
            ClusterEvent(DEVICE_FAILURE, at_iteration=5, node=1)
        with pytest.raises(ElasticEventError):
            ClusterEvent(DEVICE_RECOVERY, at_iteration=5, device=3)

    def test_node_join_requires_spec_and_size_but_no_node(self):
        event = ClusterEvent(
            NODE_JOIN, at_iteration=1, spec=TEST_GPU_SPEC, num_devices=4
        )
        assert "TestGPU" in event.describe()
        with pytest.raises(ElasticEventError):
            ClusterEvent(NODE_JOIN, at_iteration=1, num_devices=4)
        with pytest.raises(ElasticEventError):
            ClusterEvent(NODE_JOIN, at_iteration=1, spec=TEST_GPU_SPEC, num_devices=0)
        with pytest.raises(ElasticEventError):
            ClusterEvent(
                NODE_JOIN, at_iteration=1, node=0, spec=TEST_GPU_SPEC, num_devices=4
            )

    def test_straggler_severity_bounds(self):
        ClusterEvent(STRAGGLER_ONSET, at_iteration=1, node=0, severity=0.5)
        for severity in (0.0, 1.0, -0.1, None):
            with pytest.raises(ElasticEventError):
                ClusterEvent(
                    STRAGGLER_ONSET, at_iteration=1, node=0, severity=severity
                )

    def test_unknown_kind_and_negative_iteration_rejected(self):
        with pytest.raises(ElasticEventError):
            ClusterEvent("meteor_strike", at_iteration=1, node=0)
        with pytest.raises(ElasticEventError):
            ClusterEvent(NODE_LEAVE, at_iteration=-1, node=0)

    def test_to_document_is_minimal(self):
        doc = ClusterEvent(STRAGGLER_CLEAR, at_iteration=9, node=2).to_document()
        assert doc == {"kind": "straggler_clear", "at_iteration": 9, "node": 2}


class TestEventTimeline:
    def test_events_kept_sorted_by_iteration(self):
        timeline = EventTimeline(
            [
                ClusterEvent(DEVICE_FAILURE, at_iteration=30, node=0, device=0),
                ClusterEvent(DEVICE_FAILURE, at_iteration=10, node=0, device=1),
            ]
        )
        timeline.add(ClusterEvent(DEVICE_RECOVERY, at_iteration=20, node=0, device=1))
        assert [e.at_iteration for e in timeline] == [10, 20, 30]
        assert timeline.last_iteration == 30

    def test_grouping_preserves_same_iteration_order(self):
        timeline = EventTimeline()
        for device in range(4):
            timeline.add(
                ClusterEvent(DEVICE_FAILURE, at_iteration=7, node=0, device=device)
            )
        timeline.add(ClusterEvent(NODE_LEAVE, at_iteration=9, node=1))
        groups = timeline.grouped_by_iteration()
        assert [(it, len(events)) for it, events in groups] == [(7, 4), (9, 1)]
        assert [e.device for e in groups[0][1]] == [0, 1, 2, 3]


class TestGenerators:
    def test_random_failures_are_seed_deterministic(self):
        a = random_failure_timeline(2, 8, 100, 3, seed=11)
        b = random_failure_timeline(2, 8, 100, 3, seed=11)
        c = random_failure_timeline(2, 8, 100, 3, seed=12)
        assert [e.to_document() for e in a] == [e.to_document() for e in b]
        assert [e.to_document() for e in a] != [e.to_document() for e in c]

    def test_random_failures_never_double_fail_a_device(self):
        timeline = random_failure_timeline(2, 8, 1000, 16, seed=0)
        failed = [
            (e.node, e.device) for e in timeline if e.kind == DEVICE_FAILURE
        ]
        assert len(failed) == len(set(failed)) == 16

    def test_random_failures_recover_within_horizon(self):
        timeline = random_failure_timeline(1, 8, 50, 4, seed=2, repair_iterations=10)
        downs = {(e.node, e.device): e.at_iteration for e in timeline
                 if e.kind == DEVICE_FAILURE}
        for event in timeline:
            if event.kind == DEVICE_RECOVERY:
                assert event.at_iteration == downs[(event.node, event.device)] + 10
                assert event.at_iteration < 50

    def test_too_many_failures_rejected(self):
        with pytest.raises(ElasticEventError):
            random_failure_timeline(1, 4, 100, 5, seed=0)

    def test_island_outage_covers_every_slot(self):
        timeline = island_outage_timeline(1, 8, at_iteration=10, recovery_at=20)
        failures = [e for e in timeline if e.kind == DEVICE_FAILURE]
        recoveries = [e for e in timeline if e.kind == DEVICE_RECOVERY]
        assert sorted(e.device for e in failures) == list(range(8))
        assert all(e.node == 1 for e in failures)
        assert all(e.at_iteration == 20 for e in recoveries)

    def test_flash_crowd_joins_with_the_requested_spec(self):
        timeline = flash_crowd_timeline(5, 3, 8, TEST_GPU_SPEC)
        assert len(timeline) == 3
        assert all(e.kind == NODE_JOIN and e.spec is TEST_GPU_SPEC for e in timeline)

    def test_rolling_stragglers_onset_then_clear(self):
        timeline = rolling_straggler_timeline(
            4, 200, 6, seed=3, severity=0.4, episode_iterations=20
        )
        onsets = [e for e in timeline if e.kind == STRAGGLER_ONSET]
        assert len(onsets) == 6
        assert all(e.severity == 0.4 for e in onsets)

    @pytest.mark.parametrize("seed", range(8))
    def test_rolling_straggler_episodes_never_overlap_per_node(self, seed):
        """Regression: an overlapping same-node pair would let the earlier
        episode's clear prematurely heal the later one."""
        timeline = rolling_straggler_timeline(
            1, 100, 3, seed=seed, episode_iterations=20
        )
        intervals = []
        for event in timeline:
            if event.kind == STRAGGLER_ONSET:
                intervals.append((event.at_iteration, event.at_iteration + 20))
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end

    def test_merge_timelines(self):
        merged = merge_timelines(
            [
                island_outage_timeline(0, 2, at_iteration=10),
                flash_crowd_timeline(5, 1, 8, A800_SPEC),
            ]
        )
        assert [e.at_iteration for e in merged] == [5, 10, 10]


class TestPerDeviceStragglerEvents:
    def test_device_scoped_straggler_events_validate(self):
        onset = ClusterEvent(
            STRAGGLER_ONSET, at_iteration=1, node=0, device=3, severity=0.5
        )
        clear = ClusterEvent(STRAGGLER_CLEAR, at_iteration=2, node=0, device=3)
        assert onset.describe() == "straggler_onset(n0:d3@0.5)"
        assert clear.describe() == "straggler_clear(n0:d3)"
        assert onset.to_document()["device"] == 3
        assert clear.to_document()["device"] == 3

    def test_gpu_straggler_timeline_is_deterministic(self):
        a = gpu_straggler_timeline(2, 4, 100, 5, seed=3)
        b = gpu_straggler_timeline(2, 4, 100, 5, seed=3)
        assert a.to_document() == b.to_document()
        assert any(e.device is not None for e in a if e.kind == STRAGGLER_ONSET)

    def test_gpu_straggler_episodes_target_single_slots(self):
        timeline = gpu_straggler_timeline(2, 4, 100, 8, seed=1, severity=0.4)
        for event in timeline:
            assert event.node is not None
            assert event.device is not None
            if event.kind == STRAGGLER_ONSET:
                assert event.severity == 0.4

    @pytest.mark.parametrize("seed", [0, 7])
    def test_gpu_straggler_episodes_never_overlap_per_slot(self, seed):
        timeline = gpu_straggler_timeline(
            2, 2, 200, 12, seed=seed, episode_iterations=30
        )
        open_slots = set()
        for event in timeline:
            slot = (event.node, event.device)
            if event.kind == STRAGGLER_ONSET:
                assert slot not in open_slots
                open_slots.add(slot)
            else:
                open_slots.discard(slot)

    @pytest.mark.parametrize("seed", range(12))
    def test_gpu_straggler_episodes_strictly_separated(self, seed):
        """No two events of one slot may share an iteration: same-iteration
        events apply in insertion order, so a zero-gap pair's clear could
        silently wipe the adjacent episode's onset (regression)."""
        timeline = gpu_straggler_timeline(
            2, 2, 60, 10, seed=seed, episode_iterations=10
        )
        per_slot: dict = {}
        for event in timeline:
            per_slot.setdefault((event.node, event.device), []).append(event)
        for events in per_slot.values():
            iterations = [event.at_iteration for event in events]
            assert len(iterations) == len(set(iterations))
            kinds = [event.kind for event in sorted(events, key=lambda e: e.at_iteration)]
            for first, second in zip(kinds, kinds[1:]):
                assert first != second  # strict onset/clear alternation

    @pytest.mark.parametrize("seed", range(12))
    def test_rolling_straggler_episodes_strictly_separated(self, seed):
        timeline = rolling_straggler_timeline(
            2, 60, 10, seed=seed, episode_iterations=10
        )
        per_node: dict = {}
        for event in timeline:
            per_node.setdefault(event.node, []).append(event)
        for events in per_node.values():
            iterations = [event.at_iteration for event in events]
            assert len(iterations) == len(set(iterations))
