"""Tests for the QWen-VAL workload (decoder-only LLM)."""

import pytest

from repro.core.contraction import contract_graph
from repro.graph.builder import MultiTaskGraphBuilder, build_unified_graph
from repro.graph.ops import FP16_BYTES
from repro.models.qwen_val import (
    QWEN_VAL_10B,
    QWEN_VAL_30B,
    QWEN_VAL_70B,
    QWEN_VAL_TASKS,
    build_qwen_val_task,
    qwen_val_tasks,
)


class TestTaskConstruction:
    def test_three_tasks_with_expected_modalities(self):
        assert len(QWEN_VAL_TASKS) == 3
        assert QWEN_VAL_TASKS[0].modalities == ("vision",)
        assert QWEN_VAL_TASKS[1].modalities == ("audio",)
        assert set(QWEN_VAL_TASKS[2].modalities) == {"vision", "audio"}

    def test_val_task_has_two_encoders(self):
        task = build_qwen_val_task(QWEN_VAL_TASKS[2])
        assert "vision_encoder" in task.module_names
        assert "audio_encoder" in task.module_names
        graph = task.build_graph()
        llm_first = f"{task.name}.llm.embedding"
        assert graph.in_degree(llm_first) == 2

    def test_size_selection(self):
        assert len(qwen_val_tasks(3, size="10b")) == 3
        with pytest.raises(ValueError):
            qwen_val_tasks(size="13b")
        with pytest.raises(ValueError):
            qwen_val_tasks(num_tasks=4)


class TestWorkloadProperties:
    def test_parameter_count_close_to_paper(self):
        """Tab. 1b reports 9.25B parameters for QWen-VAL."""
        graph = build_unified_graph(qwen_val_tasks(3))
        params = graph.total_param_bytes() / FP16_BYTES
        assert params == pytest.approx(9.25e9, rel=0.15)

    def test_larger_variants_scale_up(self):
        def params(size):
            graph = build_unified_graph(qwen_val_tasks(3, size=size))
            return graph.total_param_bytes() / FP16_BYTES

        p10, p30, p70 = params("10b"), params("30b"), params("70b")
        assert p10 < p30 < p70
        assert p30 == pytest.approx(30e9, rel=0.25)
        assert p70 == pytest.approx(70e9, rel=0.25)

    def test_llm_dominates_computation(self):
        """The cross-modal module (LLM) is larger than the encoders (§5.1)."""
        task = build_qwen_val_task(QWEN_VAL_TASKS[0])
        llm_flops = task.module("llm").flops
        encoder_flops = task.module("vision_encoder").flops
        assert llm_flops > encoder_flops

    def test_llm_shared_across_tasks(self):
        builder = MultiTaskGraphBuilder(qwen_val_tasks(3))
        shared = builder.shared_parameter_keys()
        llm_keys = [k for k in shared if ".llm." in k]
        assert llm_keys
        for key in llm_keys:
            assert len(shared[key]) == 3

    def test_configs_are_consistent(self):
        assert QWEN_VAL_10B.llm_hidden < QWEN_VAL_30B.llm_hidden <= QWEN_VAL_70B.llm_hidden
        assert QWEN_VAL_10B.llm_layers < QWEN_VAL_30B.llm_layers < QWEN_VAL_70B.llm_layers

    def test_contraction_keeps_llm_as_single_metaop_per_task(self):
        metagraph = contract_graph(build_unified_graph(qwen_val_tasks(1)))
        llm_metaops = [
            m for m in metagraph.metaops.values() if m.op_type == "llm_decoder_layer"
        ]
        assert len(llm_metaops) == 1
        assert llm_metaops[0].num_operators == QWEN_VAL_10B.llm_layers
