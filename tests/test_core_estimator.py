"""Unit tests for the piecewise alpha-beta scalability estimator (§3.2)."""

import pytest

from repro.core.contraction import contract_graph
from repro.core.estimator import EstimatorError, ScalabilityEstimator, ScalingCurve
from repro.costmodel.profiler import ProfileSample, SyntheticProfiler
from repro.graph.builder import build_unified_graph
from tests.conftest import make_chain_task  # noqa: F401 (used in fixtures below)


def samples_from(points):
    return [ProfileSample(n, t) for n, t in points]


class TestScalingCurveFitting:
    def test_requires_samples(self):
        with pytest.raises(EstimatorError):
            ScalingCurve([])

    def test_interpolates_measured_points_exactly(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 5.0), (4, 3.0), (8, 2.5)]))
        for n, t in [(1, 8.0), (2, 5.0), (4, 3.0), (8, 2.5)]:
            assert curve.time(n) == pytest.approx(t)

    def test_piecewise_interpolation_between_points(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 4.0)]))
        # alpha + beta/n through (1, 8), (2, 4): alpha = 0, beta = 8.
        assert curve.time(1.5) == pytest.approx(8.0 / 1.5)

    def test_monotonicity_enforced_on_noisy_samples(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 9.0), (4, 3.0)]))
        assert curve.time(2) <= curve.time(1)

    def test_duplicate_points_deduplicated(self):
        curve = ScalingCurve(samples_from([(2, 5.0), (2, 6.0), (4, 3.0)]))
        assert curve.min_devices == 2
        assert len(curve.samples) == 2

    def test_single_sample_constant_curve(self):
        curve = ScalingCurve(samples_from([(4, 2.0)]))
        assert curve.time(1) == pytest.approx(2.0)
        assert curve.time(8) == pytest.approx(2.0)

    def test_extrapolation_below_one_device(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 4.0)]))
        assert curve.time(0.5) == pytest.approx(16.0)

    def test_time_rejects_non_positive_allocation(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 4.0)]))
        with pytest.raises(EstimatorError):
            curve.time(0)


class TestScalingCurveInverse:
    def test_inverse_round_trips_through_time(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 5.0), (4, 3.0), (8, 2.5)]))
        for target in (7.0, 4.5, 2.8):
            n = curve.inverse(target)
            assert curve.time(n) == pytest.approx(target, rel=1e-6)

    def test_inverse_below_min_allocation(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 4.0)]))
        n = curve.inverse(16.0)
        assert n < 1.0

    def test_inverse_saturates_at_cap(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 5.0), (4, 4.9)]))
        assert curve.inverse(1e-9, max_devices=4) == 4.0

    def test_inverse_rejects_non_positive_target(self):
        curve = ScalingCurve(samples_from([(1, 8.0)]))
        with pytest.raises(EstimatorError):
            curve.inverse(0.0)

    def test_speedup_definition(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (4, 2.0)]))
        assert curve.speedup(4) == pytest.approx(4.0)
        assert curve.speedup(1) == pytest.approx(1.0)

    def test_as_table(self):
        curve = ScalingCurve(samples_from([(1, 8.0), (2, 4.0)]))
        table = curve.as_table()
        assert table[0] == (1, 8.0, 1.0)
        assert table[1] == (2, 4.0, 2.0)


class TestScalabilityEstimator:
    @pytest.fixture
    def metagraph(self, tiny_graph):
        return contract_graph(tiny_graph)

    def test_estimates_every_metaop(self, cluster16, metagraph):
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster16))
        curves = estimator.estimate(metagraph)
        assert set(curves) == set(metagraph.metaops)
        for curve in curves.values():
            assert curve.max_devices == 16

    @pytest.fixture
    def monotone_metagraph(self, cluster16):
        """MetaOps whose ground-truth scaling is monotone up to 16 devices.

        Batch sizes of at least 16 keep the execution purely data parallel, so
        the ground truth is non-increasing and the fitted curve reproduces the
        profiled points exactly (no monotonicity clipping).
        """
        tasks = [
            make_chain_task(
                "mono_a", {"vision": 3, "lm": 2}, batch=16, hidden=1024, seq_len=256
            ),
            make_chain_task(
                "mono_b", {"text": 2}, batch=48, hidden=512, seq_len=256
            ),
        ]
        return contract_graph(build_unified_graph(tasks))

    def test_curves_match_ground_truth_at_profiled_points(
        self, cluster16, monotone_metagraph
    ):
        profiler = SyntheticProfiler(cluster16)
        estimator = ScalabilityEstimator(profiler)
        curves = estimator.estimate(monotone_metagraph)
        for index, metaop in monotone_metagraph.metaops.items():
            for n in (1, 2, 4, 8, 16):
                truth = profiler.timing_model.operator_time(metaop.representative, n)
                assert curves[index].time(n) == pytest.approx(truth, rel=1e-6)

    def test_curve_accuracy_between_profiled_points(
        self, cluster16, monotone_metagraph
    ):
        """The piecewise fit stays accurate at valid, non-profiled allocations.

        Accuracy is asserted at allocations that divide the batch size (the
        valid allocations §3.3 restricts itself to); at other allocations the
        ground truth contains data-parallel imbalance jumps the power-of-two
        profile deliberately does not model.
        """
        profiler = SyntheticProfiler(cluster16)
        estimator = ScalabilityEstimator(profiler)
        curves = estimator.estimate(monotone_metagraph)
        checked = 0
        for index, metaop in monotone_metagraph.metaops.items():
            for n in (3, 6, 12):
                if metaop.batch_size % n != 0:
                    continue
                truth = profiler.timing_model.operator_time(metaop.representative, n)
                assert curves[index].time(n) == pytest.approx(truth, rel=0.15)
                checked += 1
        assert checked >= 3

    def test_clipping_keeps_curve_at_or_below_non_monotone_truth(
        self, cluster16, metagraph
    ):
        """Where ground truth rises with n (TP overheads), the fitted curve is
        clipped downward so it stays non-increasing as Theorem 1 requires."""
        profiler = SyntheticProfiler(cluster16)
        curves = ScalabilityEstimator(profiler).estimate(metagraph)
        for index, metaop in metagraph.metaops.items():
            for n in (1, 2, 4, 8, 16):
                truth = profiler.timing_model.operator_time(metaop.representative, n)
                assert curves[index].time(n) <= truth * (1 + 1e-9)
            times = [curves[index].time(n) for n in (1, 2, 4, 8, 16)]
            assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_heterogeneous_scalability_is_visible(self, cluster16):
        """Heavy MetaOps must show better resource scalability than light ones."""
        heavy_task = make_chain_task("heavy", {"vision": 4}, batch=32, hidden=1024)
        light_task = make_chain_task("light", {"motion": 4}, batch=8, hidden=128)
        metagraph = contract_graph(build_unified_graph([heavy_task, light_task]))
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster16))
        curves = estimator.estimate(metagraph)
        speedups = {
            metagraph.metaop(i).task: curves[i].speedup(16) for i in curves
        }
        assert speedups["heavy"] > speedups["light"]

    def test_custom_profile_points(self, cluster16, metagraph):
        estimator = ScalabilityEstimator(
            SyntheticProfiler(cluster16), profile_points=[1, 4, 16]
        )
        curve = estimator.estimate_metaop(next(iter(metagraph.metaops.values())))
        assert [s.n_devices for s in curve.samples] == [1, 4, 16]
