"""Tests for the Multitask-CLIP (ImageBind-style) workload."""

import pytest

from repro.core.contraction import contract_graph
from repro.graph.builder import MultiTaskGraphBuilder, build_unified_graph
from repro.graph.ops import FP16_BYTES
from repro.models.multitask_clip import (
    CLIP_EMBED_DIM,
    CLIP_ENCODERS,
    CLIP_TASKS,
    build_clip_task,
    multitask_clip_tasks,
)


class TestTaskConstruction:
    def test_ten_tasks_defined(self):
        assert len(CLIP_TASKS) == 10
        assert len({spec.name for spec in CLIP_TASKS}) == 10

    def test_six_modalities_covered(self):
        used = {spec.modality_a for spec in CLIP_TASKS} | {
            spec.modality_b for spec in CLIP_TASKS
        }
        assert used == set(CLIP_ENCODERS)

    def test_task_structure(self):
        task = build_clip_task(CLIP_TASKS[0])
        # Two encoders, two projections and the contrastive loss.
        assert len(task.modules) == 5
        assert "contrastive_loss" in task.module_names
        graph = task.build_graph()
        assert graph.in_degree(f"{task.name}.contrastive_loss") == 2

    def test_encoder_depths_match_config(self):
        task = build_clip_task(CLIP_TASKS[4])  # vision + text
        vision = task.module("vision_encoder")
        text = task.module("text_encoder")
        assert vision.num_operators == CLIP_ENCODERS["vision"].num_layers
        assert text.num_operators == CLIP_ENCODERS["text"].num_layers

    def test_num_tasks_selection(self):
        assert len(multitask_clip_tasks(4)) == 4
        assert len(multitask_clip_tasks(10)) == 10
        with pytest.raises(ValueError):
            multitask_clip_tasks(0)
        with pytest.raises(ValueError):
            multitask_clip_tasks(11)


class TestWorkloadProperties:
    def test_parameter_count_close_to_paper(self):
        """Tab. 1b reports 1.20B parameters for Multitask-CLIP."""
        graph = build_unified_graph(multitask_clip_tasks(10))
        params = graph.total_param_bytes() / FP16_BYTES
        assert params == pytest.approx(1.20e9, rel=0.15)

    def test_encoders_shared_across_tasks(self):
        builder = MultiTaskGraphBuilder(multitask_clip_tasks(10))
        shared = builder.shared_parameter_keys()
        vision_keys = [k for k in shared if k.startswith("clip.vision")]
        assert vision_keys
        assert all(len(shared[k]) >= 2 for k in vision_keys)

    def test_cross_modal_module_is_lightweight(self):
        """The contrastive loss is tiny compared with the encoders (§5.1)."""
        task = build_clip_task(CLIP_TASKS[4])
        loss_flops = task.module("contrastive_loss").flops
        encoder_flops = task.module("vision_encoder").flops
        assert loss_flops < 0.01 * encoder_flops

    def test_inter_task_heterogeneity(self):
        """Tasks differ in total workload (the premise of Fig. 1)."""
        tasks = multitask_clip_tasks(10)
        flops = [task.flops for task in tasks]
        assert max(flops) / min(flops) > 3.0

    def test_contraction_produces_one_metaop_per_tower(self):
        tasks = multitask_clip_tasks(4)
        metagraph = contract_graph(build_unified_graph(tasks))
        # Per task: two encoder MetaOps, two projections, one loss.
        assert metagraph.num_metaops == 5 * len(tasks)
        # Encoders are level 0, projections level 1, losses level 2.
        assert metagraph.num_levels == 3

    def test_projection_dimension(self):
        task = build_clip_task(CLIP_TASKS[0])
        proj = task.module("text_projection").operators[0]
        assert proj.metadata["out_dim"] == CLIP_EMBED_DIM
