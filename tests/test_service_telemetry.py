"""Service-level telemetry: trace IDs, journaled lifecycles, SLO samples."""

import threading

import pytest

from repro.cluster.topology import make_cluster
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.faults.plan import PLANNER_ERROR
from repro.obs import (
    SloTracker,
    TelemetryJournal,
    attribution_report,
    reconstruct_requests,
)
from repro.service import PlanService, PlanServicePool, ResiliencePolicy


class GatedPlanner(ExecutionPlanner):
    """Planner whose ``plan`` blocks on an event (mirrors the server tests)."""

    def __init__(self, cluster, gate: threading.Event) -> None:
        super().__init__(cluster)
        self.gate = gate

    def plan(self, workload, **kwargs) -> ExecutionPlan:
        assert self.gate.wait(timeout=10.0), "test gate never opened"
        return super().plan(workload, **kwargs)


@pytest.fixture
def cluster():
    return make_cluster(4, devices_per_node=4)


def kinds_for(journal, trace_id):
    return [e["kind"] for e in journal.events() if e["trace_id"] == trace_id]


class TestLifecycles:
    def test_miss_then_hit_journal_full_lifecycles(self, cluster, tiny_tasks):
        journal = TelemetryJournal()
        with PlanService(
            ExecutionPlanner(cluster), num_workers=1, journal=journal
        ) as service:
            miss = service.request(tiny_tasks, timeout=30.0, tenant="t0")
            hit = service.request(tiny_tasks, timeout=30.0, tenant="t1")
        assert miss.trace_id is not None
        assert hit.trace_id != miss.trace_id
        assert kinds_for(journal, miss.trace_id) == [
            "request.submitted",
            "request.enqueued",
            "solve.attempt",
            "request.resolved",
        ]
        assert kinds_for(journal, hit.trace_id) == [
            "request.submitted",
            "request.cache_hit",
            "request.resolved",
        ]
        lifecycles = reconstruct_requests(journal.events())
        assert all(life.complete for life in lifecycles.values())
        assert lifecycles[hit.trace_id].tier == "cache"
        assert lifecycles[hit.trace_id].tenant == "t1"

    def test_coalesced_followers_record_the_leader_id(self, cluster, tiny_tasks):
        journal = TelemetryJournal()
        gate = threading.Event()
        service = PlanService(
            GatedPlanner(cluster, gate), num_workers=1, journal=journal
        )
        try:
            leader_future = service.submit(tiny_tasks)
            follower_future = service.submit(tiny_tasks)
            assert follower_future is leader_future
            gate.set()
            leader_future.result(timeout=30.0)
        finally:
            gate.set()
            service.close()
        leader_id = leader_future._repro_trace_id
        coalesced = [
            e for e in journal.events() if e["kind"] == "request.coalesced"
        ]
        assert len(coalesced) == 1
        assert coalesced[0]["leader"] == leader_id
        assert coalesced[0]["trace_id"] != leader_id
        follower = reconstruct_requests(journal.events())[
            coalesced[0]["trace_id"]
        ]
        assert follower.leader == leader_id

    def test_shed_requests_resolve_in_the_journal(self, cluster, tiny_tasks):
        journal = TelemetryJournal()
        slo = SloTracker()
        gate = threading.Event()
        service = PlanService(
            GatedPlanner(cluster, gate),
            num_workers=1,
            resilience=ResiliencePolicy(max_queue_depth=1),
            journal=journal,
            slo=slo,
        )
        try:
            blocker = service.submit(tiny_tasks)
            shed = service.request(tiny_tasks[:1], timeout=30.0, tenant="t9")
            gate.set()
            blocker.result(timeout=30.0)
        finally:
            gate.set()
            service.close()
        assert shed.outcome == "shed"
        assert kinds_for(journal, shed.trace_id) == [
            "request.submitted",
            "request.shed",
            "request.resolved",
        ]
        assert reconstruct_requests(journal.events())[shed.trace_id].complete
        assert slo.tenant_reports()["t9"].shed_rate == 1.0


class TestFaultAttribution:
    def test_injected_fault_and_retry_attach_to_the_trace(
        self, cluster, tiny_tasks
    ):
        journal = TelemetryJournal()
        plan = FaultPlan(
            events=[FaultEvent(index=0, kind=PLANNER_ERROR, attempts=1)]
        )
        injector = FaultInjector(plan, sleeper=lambda _: None)
        with PlanService(
            ExecutionPlanner(cluster),
            num_workers=1,
            fault_injector=injector,
            journal=journal,
        ) as service:
            # The service adopts journal-less collaborators: the injector's
            # fault events land in the same stream as the lifecycle.
            assert injector.journal is journal
            response = service.request(tiny_tasks, timeout=30.0)
        assert response.outcome == "served"
        lifecycle = reconstruct_requests(journal.events())[response.trace_id]
        assert lifecycle.faults == [PLANNER_ERROR]
        assert lifecycle.retries == 1
        assert lifecycle.attempts == 2
        report = attribution_report(journal.events())
        assert report["complete"] == report["requests"] == 1
        assert report["faults"] == {PLANNER_ERROR: 1}
        assert report["orphan_events"] == 0

    def test_same_seed_serial_journals_are_byte_identical(
        self, cluster, tiny_tasks
    ):
        def run():
            journal = TelemetryJournal()
            plan = FaultPlan(
                events=[FaultEvent(index=1, kind=PLANNER_ERROR, attempts=1)]
            )
            with PlanService(
                ExecutionPlanner(cluster),
                num_workers=1,
                fault_injector=FaultInjector(plan, sleeper=lambda _: None),
                journal=journal,
            ) as service:
                for index, workload in enumerate(
                    (tiny_tasks, tiny_tasks[:1], tiny_tasks)
                ):
                    service.request(
                        workload, timeout=30.0, tenant=f"tenant-{index % 2}"
                    )
            return journal.dumps()

        assert run() == run()


class TestSloRecording:
    def test_one_sample_per_request_with_tenant_scopes(self, cluster, tiny_tasks):
        slo = SloTracker()
        with PlanService(
            ExecutionPlanner(cluster), num_workers=1, slo=slo
        ) as service:
            service.request(tiny_tasks, timeout=30.0, tenant="a")
            service.request(tiny_tasks, timeout=30.0, tenant="a")
            service.request(tiny_tasks[:1], timeout=30.0, tenant="b")
        report = slo.report()
        assert report.count == 3
        assert report.availability == 1.0
        assert slo.tenant_reports()["a"].count == 2
        assert slo.tenant_reports()["b"].count == 1
        # Topology scope carries the cluster signature prefix.
        assert len(slo.topology_reports()) == 1


class TestPoolSharing:
    def test_pool_services_share_journal_slo_and_id_stream(self, tiny_tasks):
        journal = TelemetryJournal()
        slo = SloTracker()
        pool = PlanServicePool(
            lambda topology: ExecutionPlanner(topology),
            num_workers=1,
            journal=journal,
            slo=slo,
        )
        try:
            big = pool.service_for(make_cluster(4, devices_per_node=4))
            small = pool.service_for(make_cluster(2, devices_per_node=4))
            assert big is not small
            assert big.journal is journal and small.journal is journal
            assert big.trace_ids is small.trace_ids is pool.trace_ids
            first = big.request(tiny_tasks, timeout=30.0, tenant="t")
            second = small.request(tiny_tasks, timeout=30.0, tenant="t")
        finally:
            pool.close()
        # One shared ordinal stream: IDs stay unique across services.
        assert first.trace_id != second.trace_id
        lifecycles = reconstruct_requests(journal.events())
        assert set(lifecycles) == {first.trace_id, second.trace_id}
        assert {life.topology for life in lifecycles.values()} == {
            big._topology_label,
            small._topology_label,
        }
        assert slo.report().count == 2
        assert len(slo.topology_reports()) == 2
