"""Tests for sliding-window SLO tracking: fold math, burn, compliance, exports."""

import pytest

from repro.obs import SloPolicy, SloTracker, slo_from_outcomes


def fill(tracker: SloTracker, outcomes, latency=0.01, tenant=None, topology=None):
    for outcome in outcomes:
        tracker.record(outcome, latency, tenant=tenant, topology=topology)


class TestPolicy:
    def test_error_budget_is_the_unavailability_allowance(self):
        assert SloPolicy(availability_target=0.999).error_budget() == pytest.approx(
            0.001
        )
        assert SloPolicy(availability_target=1.0).error_budget() == 0.0


class TestFold:
    def test_empty_window_is_compliant_with_zeroes(self):
        report = SloTracker().report()
        assert report.count == 0
        assert report.availability == 1.0
        assert report.error_budget_burn == 0.0
        assert report.compliant

    def test_availability_counts_degraded_as_success(self):
        tracker = SloTracker(SloPolicy(availability_target=0.5))
        fill(tracker, ["served", "degraded", "error", "shed"])
        report = tracker.report()
        assert report.count == 4
        assert report.availability == pytest.approx(0.5)
        assert report.shed_rate == pytest.approx(0.25)
        assert report.degraded_rate == pytest.approx(0.25)
        assert report.error_rate == pytest.approx(0.25)

    def test_latency_percentiles_cover_successes_only(self):
        tracker = SloTracker()
        tracker.record("served", 0.010)
        tracker.record("served", 0.030)
        tracker.record("error", 99.0)  # failures carry no success latency
        report = tracker.report()
        assert report.p50_latency_seconds == pytest.approx(0.020)
        assert report.p99_latency_seconds <= 0.030

    def test_burn_is_unavailability_over_budget(self):
        tracker = SloTracker(SloPolicy(availability_target=0.9))
        fill(tracker, ["served"] * 8 + ["error"] * 2)
        # 20% unavailable against a 10% budget: burning 2x.
        assert tracker.report().error_budget_burn == pytest.approx(2.0)

    def test_zero_budget_burns_infinite_on_any_failure(self):
        tracker = SloTracker(SloPolicy(availability_target=1.0))
        fill(tracker, ["served", "error"])
        assert tracker.report().error_budget_burn == float("inf")

    def test_compliance_checks_every_enabled_objective(self):
        policy = SloPolicy(
            availability_target=0.5,
            p95_latency_seconds=0.05,
            max_shed_rate=0.0,
            max_degraded_rate=0.5,
        )
        ok = SloTracker(policy)
        fill(ok, ["served"] * 4, latency=0.01)
        assert ok.report().compliant

        slow = SloTracker(policy)
        fill(slow, ["served"] * 4, latency=0.2)
        assert not slow.report().compliant

        shedding = SloTracker(policy)
        fill(shedding, ["served"] * 4 + ["shed"])
        assert not shedding.report().compliant

    def test_sliding_window_forgets_old_samples(self):
        tracker = SloTracker(window=4)
        fill(tracker, ["error"] * 4)
        fill(tracker, ["served"] * 4)  # pushes every error out
        assert tracker.report().availability == 1.0


class TestScopes:
    def test_per_tenant_and_topology_windows(self):
        tracker = SloTracker()
        tracker.record("served", 0.01, tenant="a", topology="t1")
        tracker.record("error", 0.01, tenant="b", topology="t1")
        assert tracker.tenants() == ["a", "b"]
        tenants = tracker.tenant_reports()
        assert tenants["a"].availability == 1.0
        assert tenants["b"].availability == 0.0
        topologies = tracker.topology_reports()
        assert topologies["t1"].count == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SloTracker(window=0)


class TestExports:
    def test_bench_metrics_flatten_global_and_tenant_scopes(self):
        tracker = SloTracker()
        tracker.record("served", 0.010, tenant="a")
        metrics = tracker.to_bench_metrics()
        assert metrics["slo.count"] == 1.0
        assert metrics["slo.availability"] == 1.0
        assert metrics["slo.p50_ms"] == pytest.approx(10.0)
        assert metrics["slo.tenant.a.count"] == 1.0

    def test_infinite_burn_exports_as_minus_one(self):
        tracker = SloTracker(SloPolicy(availability_target=1.0))
        fill(tracker, ["error"])
        assert tracker.to_bench_metrics()["slo.error_budget_burn"] == -1.0
        prom = tracker.render_prometheus()
        assert "repro_slo_error_budget_burn -1" in prom

    def test_render_lists_every_scope(self):
        tracker = SloTracker()
        tracker.record("served", 0.01, tenant="a", topology="x")
        text = tracker.render()
        assert "_global" in text
        assert "tenant:a" in text
        assert "topology:x" in text

    def test_prometheus_exposition_shape(self):
        tracker = SloTracker()
        tracker.record("served", 0.01, tenant="a")
        text = tracker.render_prometheus()
        assert "# HELP repro_slo_availability" in text
        assert "# TYPE repro_slo_availability gauge" in text
        assert 'repro_slo_availability{tenant="a"} 1' in text
        assert text.endswith("\n")

    def test_as_dict_round_trips_report_fields(self):
        tracker = SloTracker()
        fill(tracker, ["served", "degraded"])
        data = tracker.report().as_dict()
        assert data["count"] == 2
        assert data["degraded_rate"] == pytest.approx(0.5)
        assert data["compliant"] is True


class TestFromOutcomes:
    def test_builds_tracker_from_journal_style_pairs(self):
        tracker = slo_from_outcomes(
            [("served", "a"), ("shed", "a"), ("served", None)],
            SloPolicy(availability_target=0.5),
        )
        report = tracker.report()
        assert report.count == 3
        assert report.shed_rate == pytest.approx(1 / 3)
        assert tracker.tenant_reports()["a"].count == 2
