"""Tests for canonical workload fingerprints (plan-cache keys)."""

import pytest

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology, make_cluster
from repro.core.planner import ExecutionPlanner
from repro.costmodel.flops import LayerConfig, make_transformer_layer_op
from repro.costmodel.memory import MemoryModel, MemoryModelConfig
from repro.costmodel.timing import TimingModelConfig
from repro.graph.ops import TensorSpec
from repro.graph.task import SpindleTask
from repro.service.fingerprint import (
    canonical_task,
    fingerprint_workload,
)


@pytest.fixture
def cluster():
    return make_cluster(4, devices_per_node=4)


def _task(
    name: str,
    module_layers: dict[str, int] | None = None,
    batch: int = 8,
    hidden: int = 256,
    shared_prefix: str | None = "shared",
) -> SpindleTask:
    """A chain task structurally identical across different ``name`` values."""
    module_layers = module_layers or {"audio": 3, "lm": 2}
    task = SpindleTask(name, batch_size=batch)
    previous = None
    for module_name, layers in module_layers.items():
        ops = [
            make_transformer_layer_op(
                name=f"{name}.{module_name}.layer{i}",
                op_type=f"{module_name}_layer",
                task=name,
                modality=module_name,
                spec=TensorSpec(batch=batch, seq_len=64, hidden=hidden),
                config=LayerConfig(hidden_size=hidden),
                param_key=(
                    f"{shared_prefix}.{module_name}.layer{i}" if shared_prefix else None
                ),
            )
            for i in range(layers)
        ]
        task.add_module(module_name, ops)
        if previous is not None:
            task.add_flow(previous, module_name)
        previous = module_name
    return task


class TestTaskCanonicalisation:
    def test_task_name_excluded(self):
        assert canonical_task(_task("alpha")) == canonical_task(_task("beta"))

    def test_structure_included(self):
        base = canonical_task(_task("t"))
        assert canonical_task(_task("t", batch=16)) != base
        assert canonical_task(_task("t", module_layers={"audio": 4, "lm": 2})) != base
        assert canonical_task(_task("t", shared_prefix=None)) != base


class TestFingerprintStability:
    def test_deterministic(self, cluster):
        tasks = [_task("a"), _task("b", module_layers={"vision": 2, "lm": 2})]
        assert fingerprint_workload(tasks, cluster) == fingerprint_workload(
            tasks, cluster
        )

    def test_task_order_invariant(self, cluster):
        first = _task("a")
        second = _task("b", module_layers={"vision": 2, "lm": 2})
        assert fingerprint_workload([first, second], cluster) == fingerprint_workload(
            [second, first], cluster
        )

    def test_task_naming_invariant(self, cluster):
        original = [_task("a"), _task("b", module_layers={"vision": 2, "lm": 2})]
        renamed = [_task("x"), _task("y", module_layers={"vision": 2, "lm": 2})]
        assert fingerprint_workload(original, cluster) == fingerprint_workload(
            renamed, cluster
        )

    def test_task_set_sensitive(self, cluster):
        tasks = [_task("a"), _task("b", module_layers={"vision": 2, "lm": 2})]
        assert fingerprint_workload(tasks, cluster) != fingerprint_workload(
            tasks[:1], cluster
        )

    def test_cluster_sensitive(self):
        tasks = [_task("a")]
        small = make_cluster(4, devices_per_node=4)
        large = make_cluster(8, devices_per_node=4)
        assert fingerprint_workload(tasks, small) != fingerprint_workload(tasks, large)
        one_island = make_cluster(8, devices_per_node=8)
        assert fingerprint_workload(tasks, large) != fingerprint_workload(
            tasks, one_island
        )

    def test_device_spec_sensitive(self):
        tasks = [_task("a")]
        a = make_cluster(4, devices_per_node=4)
        b = ClusterTopology(
            num_nodes=1,
            devices_per_node=4,
            device_spec=DeviceSpec(
                name="other", peak_flops=100e12, memory_bytes=32 * 1024**3
            ),
        )
        assert fingerprint_workload(tasks, a) != fingerprint_workload(tasks, b)

    def test_config_sensitive(self, cluster):
        tasks = [_task("a")]
        base = fingerprint_workload(tasks, cluster, {"placement": "locality"})
        assert base != fingerprint_workload(tasks, cluster, {"placement": "sequential"})
        assert base != fingerprint_workload(tasks, cluster)


class TestPlannerFingerprint:
    def test_plan_carries_fingerprint(self, cluster, tiny_tasks):
        plan = ExecutionPlanner(cluster).plan(tiny_tasks)
        assert plan.fingerprint
        again = ExecutionPlanner(cluster).plan(list(reversed(tiny_tasks)))
        assert again.fingerprint == plan.fingerprint

    def test_planner_config_changes_fingerprint(self, cluster, tiny_tasks):
        locality = ExecutionPlanner(cluster).plan(tiny_tasks)
        sequential = ExecutionPlanner(
            cluster, placement_strategy="sequential"
        ).plan(tiny_tasks)
        assert locality.fingerprint != sequential.fingerprint
        tweaked = ExecutionPlanner(
            cluster, timing_config=TimingModelConfig(backward_multiplier=1.5)
        ).plan(tiny_tasks)
        assert tweaked.fingerprint != locality.fingerprint
        small_memory = ExecutionPlanner(
            cluster,
            memory_model=MemoryModel(
                MemoryModelConfig(framework_overhead_bytes=0.5 * 1024**3)
            ),
        ).plan(tiny_tasks)
        assert small_memory.fingerprint != locality.fingerprint

    def test_distinct_closures_never_share_a_signature(self, cluster):
        def make_fn(cap):
            def fn(metaop, max_devices):
                return list(range(1, min(max_devices, cap) + 1))

            return fn

        capped2 = ExecutionPlanner(cluster, valid_allocation_fn=make_fn(2))
        capped8 = ExecutionPlanner(cluster, valid_allocation_fn=make_fn(8))
        assert capped2.config_signature() != capped8.config_signature()
        # Module-level functions keep a stable, process-independent identity.
        default_a = ExecutionPlanner(cluster).config_signature()
        default_b = ExecutionPlanner(cluster).config_signature()
        assert default_a == default_b

    def test_graph_input_fingerprinted(self, cluster, tiny_graph):
        plan = ExecutionPlanner(cluster).plan(tiny_graph)
        assert plan.fingerprint
        assert ExecutionPlanner(cluster).plan(tiny_graph).fingerprint == plan.fingerprint
