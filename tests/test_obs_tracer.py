"""Tests for the span tracer: nesting, thread-locality and the no-op path."""

import threading
import time

import pytest

from repro.obs import NOOP_SPAN, SpanTracer, get_tracer


@pytest.fixture
def tracer():
    return SpanTracer(enabled=True)


class TestBasicSpans:
    def test_records_name_category_and_attributes(self, tracer):
        with tracer.span("work.step", category="work", shard=3):
            pass
        (record,) = tracer.records()
        assert record.name == "work.step"
        assert record.category == "work"
        assert record.attributes == {"shard": 3}
        assert record.duration >= 0.0
        assert record.end == pytest.approx(record.start + record.duration)

    def test_set_attaches_attributes_mid_span(self, tracer):
        with tracer.span("work") as span:
            span.set(outcome="ok", items=2)
        (record,) = tracer.records()
        assert record.attributes == {"outcome": "ok", "items": 2}

    def test_nested_spans_link_parent_and_depth(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
        inner, mid, out = tracer.records()  # completion order: innermost first
        assert out.name == "outer" and out.parent_id is None and out.depth == 0
        assert mid.parent_id == out.span_id and mid.depth == 1
        assert inner.parent_id == mid.span_id and inner.depth == 2
        assert outer.span_id == out.span_id
        assert middle.span_id == mid.span_id

    def test_siblings_share_a_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = tracer.records()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.depth == b.depth == 1

    def test_exception_still_closes_and_records(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record.name == "failing"
        # The stack unwound: a following span is a root again.
        with tracer.span("after"):
            pass
        after = tracer.records()[-1]
        assert after.parent_id is None and after.depth == 0

    def test_clear_and_len(self, tracer):
        with tracer.span("one"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.records() == []


class TestDisabledPath:
    def test_disabled_span_is_the_noop_singleton(self):
        tracer = SpanTracer(enabled=False)
        span = tracer.span("anything", category="x", attr=1)
        assert span is NOOP_SPAN
        assert tracer.span("other") is span  # no allocation per call
        with span as entered:
            entered.set(ignored=True)
        assert len(tracer) == 0
        assert span.seconds == 0.0

    def test_timed_measures_even_when_disabled(self):
        tracer = SpanTracer(enabled=False)
        with tracer.timed("slow") as span:
            time.sleep(0.01)
        assert span.seconds >= 0.005
        assert len(tracer) == 0  # measured but not recorded

    def test_timed_records_when_enabled(self, tracer):
        with tracer.timed("slow") as span:
            pass
        (record,) = tracer.records()
        assert record.duration == pytest.approx(span.seconds)

    def test_enable_disable_and_capture(self):
        tracer = SpanTracer(enabled=False)
        with tracer.capture():
            assert tracer.enabled
            with tracer.span("captured"):
                pass
        assert not tracer.enabled
        assert [r.name for r in tracer.records()] == ["captured"]
        tracer.enable()
        assert tracer.enabled
        # capture restores the *prior* state, including enabled.
        with tracer.capture():
            pass
        assert tracer.enabled
        tracer.disable()
        assert not tracer.enabled


class TestThreadLocality:
    def test_threads_keep_independent_stacks(self, tracer):
        """Concurrent workers never parent a span onto another thread's span."""
        barrier = threading.Barrier(4)

        def worker(index: int) -> None:
            with tracer.span(f"outer{index}"):
                barrier.wait(timeout=10.0)
                with tracer.span(f"inner{index}"):
                    barrier.wait(timeout=10.0)

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"w{i}")
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        records = {r.name: r for r in tracer.records()}
        assert len(records) == 8
        for index in range(4):
            outer = records[f"outer{index}"]
            inner = records[f"inner{index}"]
            assert outer.parent_id is None
            assert inner.parent_id == outer.span_id, (
                "span parented across threads"
            )
            assert inner.thread_id == outer.thread_id
            assert outer.thread_name == f"w{index}"

    def test_span_ids_unique_across_threads(self, tracer):
        def worker() -> None:
            for _ in range(50):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        ids = [r.span_id for r in tracer.records()]
        assert len(ids) == 200
        assert len(set(ids)) == 200


class TestGlobalTracer:
    def test_global_tracer_is_a_singleton(self):
        assert get_tracer() is get_tracer()

    def test_global_tracer_default_state_restorable(self):
        tracer = get_tracer()
        previous = tracer.enabled
        try:
            with tracer.capture():
                assert tracer.enabled
            assert tracer.enabled == previous
        finally:
            (tracer.enable if previous else tracer.disable)()
