"""Unit tests for device specs and the cluster topology."""

import pytest

from repro.cluster.device import A800_SPEC, Device, DeviceSpec
from repro.cluster.topology import (
    ClusterTopology,
    InterconnectSpec,
    TopologyError,
    make_cluster,
)


class TestDeviceSpec:
    def test_achievable_flops(self):
        spec = DeviceSpec(name="x", peak_flops=100.0, memory_bytes=10.0,
                          achievable_fraction=0.5)
        assert spec.achievable_flops == 50.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(peak_flops=0, memory_bytes=1),
            dict(peak_flops=1, memory_bytes=0),
            dict(peak_flops=1, memory_bytes=1, achievable_fraction=0.0),
            dict(peak_flops=1, memory_bytes=1, achievable_fraction=1.5),
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ValueError):
            DeviceSpec(name="x", **kwargs)

    def test_a800_reference_values(self):
        assert A800_SPEC.peak_flops == pytest.approx(312e12)
        assert A800_SPEC.memory_bytes == 80 * 1024**3

    def test_device_naming(self):
        device = Device(device_id=9, node_id=1, local_rank=1, spec=A800_SPEC)
        assert device.name == "node1:gpu1"


class TestInterconnectSpec:
    def test_transfer_time(self):
        link = InterconnectSpec(bandwidth=100.0, latency=1.0)
        assert link.transfer_time(200.0) == pytest.approx(3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth=0.0, latency=1.0)
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth=1.0, latency=-1.0)
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth=1.0, latency=0.0).transfer_time(-1.0)


class TestClusterTopology:
    def test_device_enumeration(self, two_island_cluster):
        cluster = two_island_cluster
        assert cluster.num_devices == 8
        assert [d.device_id for d in cluster.devices] == list(range(8))
        assert cluster.device(5).node_id == 1

    def test_islands(self, two_island_cluster):
        islands = two_island_cluster.islands()
        assert islands == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert two_island_cluster.island_devices(1) == [4, 5, 6, 7]
        assert two_island_cluster.same_island(0, 3)
        assert not two_island_cluster.same_island(3, 4)

    def test_out_of_range_lookups(self, two_island_cluster):
        with pytest.raises(TopologyError):
            two_island_cluster.device(8)
        with pytest.raises(TopologyError):
            two_island_cluster.island_devices(2)

    def test_link_classes(self, two_island_cluster):
        cluster = two_island_cluster
        assert cluster.link_between(0, 0) is cluster.intra_device
        assert cluster.link_between(0, 1) is cluster.intra_island
        assert cluster.link_between(0, 4) is cluster.inter_island
        assert cluster.bandwidth_between(0, 1) > cluster.bandwidth_between(0, 4)

    def test_group_bandwidth_single_island(self, two_island_cluster):
        link = two_island_cluster.group_bandwidth([0, 1, 2])
        assert link.bandwidth == two_island_cluster.intra_island.bandwidth

    def test_group_bandwidth_cross_island_scales_with_rails(self, cluster16):
        narrow = cluster16.group_bandwidth([0, 8])
        wide = cluster16.group_bandwidth(list(range(16)))
        assert wide.bandwidth > narrow.bandwidth
        assert wide.bandwidth <= cluster16.intra_island.bandwidth

    def test_group_bandwidth_empty_rejected(self, two_island_cluster):
        with pytest.raises(TopologyError):
            two_island_cluster.group_bandwidth([])

    def test_totals(self, single_island_cluster):
        cluster = single_island_cluster
        assert cluster.total_peak_flops == 4 * cluster.device_spec.peak_flops
        assert cluster.total_memory_bytes == 4 * cluster.device_spec.memory_bytes


class TestMakeCluster:
    def test_paper_cluster_sizes(self):
        for gpus in (8, 16, 32, 64):
            cluster = make_cluster(gpus)
            assert cluster.num_devices == gpus
            assert cluster.devices_per_node == 8

    def test_small_cluster_is_single_island(self):
        cluster = make_cluster(4)
        assert cluster.num_nodes == 1
        assert cluster.devices_per_node == 4

    def test_invalid_sizes(self):
        with pytest.raises(TopologyError):
            make_cluster(0)
        with pytest.raises(TopologyError):
            make_cluster(12, devices_per_node=8)

    def test_invalid_topology_arguments(self):
        with pytest.raises(TopologyError):
            ClusterTopology(num_nodes=0, devices_per_node=8)
        with pytest.raises(TopologyError):
            ClusterTopology(num_nodes=1, devices_per_node=0)
