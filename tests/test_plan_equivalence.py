"""Equivalence of the vectorized planner hot path and the reference path.

The optimized planner (cached allocation grids, estimator curve memoization,
bisect-based curve evaluation, table-driven ``Find_Inverse_Value``) must be a
pure performance change: across the Fig. 8 workload grid it has to emit plans
that are *identical* — same fingerprints, same serialized documents — to the
reference implementations retained behind ``optimized=False``.  These tests
pin that contract at every layer: curve evaluation, grid memoization, the
inverse lookup, and the end-to-end plans.
"""

import math
import random

import pytest

from repro.core.allocator import (
    InverseTable,
    ValidAllocationGrid,
    _find_inverse_value_scan,
    default_valid_allocations,
    find_inverse_value,
)
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator, ScalingCurve
from repro.core.metagraph import MetaOp
from repro.core.planner import ExecutionPlanner
from repro.core.serialization import plan_to_dict
from repro.costmodel.profiler import ProfileSample, SyntheticProfiler
from repro.experiments.workloads import fig8_workloads
from repro.graph.builder import build_unified_graph
from tests.conftest import make_chain_task, make_layer_op


def make_metaop(index=0, num_ops=4, batch=8):
    ops = [make_layer_op(f"m{index}.{i}", batch=batch) for i in range(num_ops)]
    return MetaOp(index=index, operators=ops)


def real_curves(num_devices=16):
    """Scaling curves fitted from a real (profiled) multi-task workload."""
    tasks = [
        make_chain_task(
            f"task{i}", {"text": 3, "vision": 2}, batch=4 * (i + 1)
        )
        for i in range(3)
    ]
    graph = build_unified_graph(tasks)
    metagraph = contract_graph(graph)
    from repro.cluster.topology import make_cluster

    profiler = SyntheticProfiler(make_cluster(num_devices))
    curves = ScalabilityEstimator(profiler).estimate(metagraph)
    return list(curves.values())


def synthetic_curves():
    """Hand-built curves covering plateaus and single-sample degeneracy."""
    ideal = ScalingCurve([ProfileSample(n, 8.0 / n) for n in (1, 2, 4, 8, 16)])
    plateau = ScalingCurve(
        [
            ProfileSample(1, 4.0),
            ProfileSample(2, 2.0),
            ProfileSample(4, 2.0),
            ProfileSample(8, 1.5),
        ]
    )
    single = ScalingCurve([ProfileSample(2, 3.0)])
    return [ideal, plateau, single]


class TestScalingCurveEquivalence:
    """Bisect-based evaluation must match the linear reference scan exactly."""

    @pytest.mark.parametrize("curve_index", range(3))
    def test_time_matches_scan_on_synthetic_curves(self, curve_index):
        curve = synthetic_curves()[curve_index]
        lo, hi = curve.min_devices, curve.max_devices
        points = [0.25, 0.5, lo, float(lo), hi, float(hi), hi + 3.5]
        points += [lo + (hi - lo) * f for f in (0.1, 0.33, 0.5, 0.77, 0.99)]
        points += [float(s.n_devices) for s in curve.samples]  # breakpoints
        for n in points:
            assert curve.time(n) == curve._time_scan(n)

    def test_time_matches_scan_on_real_curves(self):
        rng = random.Random(7)
        for curve in real_curves():
            for _ in range(50):
                n = rng.uniform(0.1, curve.max_devices + 4)
                assert curve.time(n) == curve._time_scan(n)

    def test_time_many_matches_time_elementwise(self):
        for curve in real_curves() + synthetic_curves():
            grid = [0.5, 1, 2, 3, 5, 7, 8, 11, 16]
            batched = curve.time_many(grid)
            for n, value in zip(grid, batched):
                assert float(value) == curve.time(n)

    def test_inverse_round_trips_through_time(self):
        for curve in real_curves():
            for n in range(curve.min_devices, curve.max_devices + 1):
                target = curve.time(n)
                recovered = curve.inverse(target)
                assert curve.time(recovered) == pytest.approx(target, rel=1e-9)


class TestFindInverseValueEquivalence:
    """Table-driven Find_Inverse_Value == the reference linear scan."""

    def test_matches_scan_on_real_curves(self):
        rng = random.Random(13)
        grid = default_valid_allocations(make_metaop(batch=8), 16)
        for curve in real_curves():
            t_fast, t_slow = curve.time(grid[-1]), curve.time(grid[0])
            targets = [t_slow * 4, t_slow, t_fast, t_fast / 4]
            targets += [rng.uniform(t_fast, t_slow) for _ in range(60)]
            for target in targets:
                assert find_inverse_value(curve, target, grid) == (
                    _find_inverse_value_scan(curve, target, grid)
                )

    def test_matches_scan_on_plateau_curves(self):
        curve = synthetic_curves()[1]
        grid = [1, 2, 4, 8]
        for target in [5.0, 4.0, 3.0, 2.5, 2.0, 1.75, 1.5, 1.0]:
            assert find_inverse_value(curve, target, grid) == (
                _find_inverse_value_scan(curve, target, grid)
            )

    def test_ulp_nonmonotone_times_fall_back_to_the_scan(self):
        """Grid times straddling a piece breakpoint can break monotonicity by
        rounding ulps; bisect is only exact over a sorted column, so such
        tables must take the reference pair scan (first-match semantics)
        rather than interpolate whatever bracket the bisect lands on."""
        import numpy as np

        # 1-ulp upward excursion at index 2: targets like 4.0 are bracketed
        # by BOTH pairs (1, 2) and (2, 3); the reference scan picks the first.
        times = [8.0, 4.0, 4.0 + 5e-16, 1.0]

        class StubCurve:
            def time_many(self, grid):
                return np.array(times)

        table = InverseTable(StubCurve(), [1, 2, 4, 8])
        assert table.times == times

        def reference(target):
            if target >= times[0]:
                return table.grid[0] * times[0] / target
            if target <= times[-1]:
                return float(table.grid[-1])
            for (n_lo, t_lo), (n_hi, t_hi) in zip(
                zip(table.grid, times), zip(table.grid[1:], times[1:])
            ):
                if t_hi <= target <= t_lo:
                    if abs(t_lo - t_hi) < 1e-15:
                        return float(n_hi)
                    return (
                        (target - t_hi) * n_lo + (t_lo - target) * n_hi
                    ) / (t_lo - t_hi)
            return float(table.grid[-1])

        for target in [10.0, 8.0, 6.0, 4.0, 4.0 + 5e-16, 2.0, 1.0, 0.5]:
            assert table.inverse(target) == reference(target)

    def test_unsorted_duplicate_grids_are_normalized(self):
        curve = synthetic_curves()[0]
        messy = [8, 2, 2, 1, 4, 4]
        for target in [10.0, 3.0, 1.1]:
            assert find_inverse_value(curve, target, messy) == (
                find_inverse_value(curve, target, [1, 2, 4, 8])
            )


class TestValidAllocationGridEquivalence:
    def test_cached_grid_matches_direct_enumeration(self):
        grid_store = ValidAllocationGrid()
        for batch in (1, 2, 6, 8, 24):
            for max_devices in (4, 16, 64, 256):
                metaop = make_metaop(batch=batch)
                expected = tuple(
                    sorted(set(default_valid_allocations(metaop, max_devices)))
                )
                assert grid_store.grid(metaop, max_devices) == expected
                # Second lookup returns the memoized grid.
                assert grid_store.grid(metaop, max_devices) == expected

    def test_default_grids_memoized_by_batch_and_cluster(self):
        grid_store = ValidAllocationGrid()
        a = grid_store.grid(make_metaop(index=0, batch=8), 32)
        b = grid_store.grid(make_metaop(index=1, batch=8), 32)
        assert a is b  # one enumeration per (batch, max_devices)
        assert len(grid_store) == 1

    def test_custom_fns_are_called_through_uncached(self):
        calls = []

        def custom(metaop, max_devices):
            calls.append(metaop.index)
            return [1, min(2, max_devices)]

        grid_store = ValidAllocationGrid(custom)
        metaop = make_metaop(index=5)
        assert grid_store.grid(metaop, 8) == (1, 2)
        assert grid_store.grid(metaop, 8) == (1, 2)
        assert calls == [5, 5]
        assert len(grid_store) == 0


class TestEstimatorCurveCache:
    def test_identical_metaops_share_one_profile(self, cluster16):
        profiler = SyntheticProfiler(cluster16)
        estimator = ScalabilityEstimator(profiler)
        a = estimator.estimate_metaop(make_metaop(index=0))
        b = estimator.estimate_metaop(make_metaop(index=1))
        assert a is b

    def test_noisy_profiles_bypass_the_cache(self, cluster16):
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster16, noise_std=0.1))
        a = estimator.estimate_metaop(make_metaop(index=0))
        b = estimator.estimate_metaop(make_metaop(index=1))
        assert a is not b
        # Distinct noise draws: the samples differ between the two profiles.
        assert any(
            not math.isclose(sa.time_seconds, sb.time_seconds)
            for sa, sb in zip(a.samples, b.samples)
        )

    def test_cache_is_bounded_fifo(self, cluster16):
        estimator = ScalabilityEstimator(
            SyntheticProfiler(cluster16), max_cached_curves=2
        )
        for batch in (2, 4, 8):
            estimator.estimate_metaop(make_metaop(index=batch, batch=batch))
        assert len(estimator._curve_cache) == 2

    def test_clear_cache_forces_reprofiling(self, cluster16):
        estimator = ScalabilityEstimator(SyntheticProfiler(cluster16))
        first = estimator.estimate_metaop(make_metaop(index=0))
        estimator.clear_cache()
        again = estimator.estimate_metaop(make_metaop(index=0))
        assert first is not again  # re-profiled, not served from the cache

    def test_incremental_planner_clear_flushes_estimator_cache(self, cluster16):
        from repro.service.incremental import IncrementalPlanner

        planner = ExecutionPlanner(cluster16)
        incremental = IncrementalPlanner(planner)
        tasks = [make_chain_task("t0", {"text": 2})]
        incremental.plan(tasks)
        assert planner.estimator._curve_cache
        incremental.clear()
        assert not planner.estimator._curve_cache

    def test_cached_curves_equal_uncached_curves(self, cluster16):
        profiler = SyntheticProfiler(cluster16)
        cached = ScalabilityEstimator(profiler)
        uncached = ScalabilityEstimator(profiler, enable_curve_cache=False)
        metaop = make_metaop(index=0)
        warm = cached.estimate_metaop(make_metaop(index=1))
        assert [s.time_seconds for s in cached.estimate_metaop(metaop).samples] == [
            s.time_seconds for s in uncached.estimate_metaop(metaop).samples
        ]
        assert warm is cached.estimate_metaop(metaop)

    def test_topology_change_invalidates_cached_curves(self, cluster16):
        """Regression: MetaOp.curve_key does not encode the cluster, so the
        cache must key on the topology signature — replanning after an
        elastic event must never reuse curves fitted for the old topology."""
        from repro.cluster.topology import make_cluster
        from repro.costmodel.timing import ExecutionTimeModel

        profiler = SyntheticProfiler(cluster16)
        estimator = ScalabilityEstimator(profiler)
        old_curve = estimator.estimate_metaop(make_metaop(index=0))
        # The substrate changes under the estimator (one island lost).
        shrunk = make_cluster(8, devices_per_node=8)
        profiler.cluster = shrunk
        profiler.timing_model = ExecutionTimeModel(shrunk)
        new_curve = estimator.estimate_metaop(make_metaop(index=0))
        assert new_curve is not old_curve
        assert new_curve.max_devices == 8  # profiled on the new topology
        # Flipping back restores the original entry (the signature matches).
        profiler.cluster = cluster16
        profiler.timing_model = ExecutionTimeModel(cluster16)
        assert estimator.estimate_metaop(make_metaop(index=0)) is old_curve

    def test_degraded_spec_invalidates_cached_curves(self):
        """A straggler-degraded topology (same shape, lower achievable
        fraction) must not share cache entries with the healthy one."""
        from repro.cluster.device import A800_SPEC
        from repro.cluster.topology import make_heterogeneous_cluster
        from repro.costmodel.timing import ExecutionTimeModel

        healthy = make_heterogeneous_cluster(
            [A800_SPEC, A800_SPEC], devices_per_node=4
        )
        degraded = make_heterogeneous_cluster(
            [A800_SPEC, A800_SPEC.degraded(0.5)], devices_per_node=4
        )
        profiler = SyntheticProfiler(healthy)
        estimator = ScalabilityEstimator(profiler)
        healthy_curve = estimator.estimate_metaop(make_metaop(index=0))
        profiler.cluster = degraded
        profiler.timing_model = ExecutionTimeModel(degraded)
        degraded_curve = estimator.estimate_metaop(make_metaop(index=0))
        assert degraded_curve is not healthy_curve
        assert degraded_curve.time(1.0) > healthy_curve.time(1.0)

    def test_incremental_planner_rejects_swapped_cluster(self, cluster16):
        from repro.service.incremental import IncrementalPlanner, StaleTopologyError

        planner = ExecutionPlanner(cluster16)
        incremental = IncrementalPlanner(planner)
        incremental.plan([make_chain_task("t0", {"text": 2})])
        from repro.cluster.topology import make_cluster

        planner.cluster = make_cluster(8, devices_per_node=8)
        with pytest.raises(StaleTopologyError):
            incremental.plan([make_chain_task("t0", {"text": 2})])


def comparable_plan_document(plan) -> dict:
    """The serialized plan minus wall-clock planning timings."""
    document = plan_to_dict(plan)
    document.pop("planning_report")
    return document


class TestPlanEquivalence:
    """Optimized and reference planners emit identical plans (Fig. 8 grid)."""

    @pytest.mark.parametrize(
        "workload", fig8_workloads(), ids=lambda w: w.name
    )
    def test_fig8_plans_identical(self, workload):
        cluster = workload.cluster()
        tasks = workload.tasks()
        optimized = ExecutionPlanner(cluster).plan(tasks)
        reference = ExecutionPlanner(cluster, optimized=False).plan(tasks)
        assert optimized.fingerprint == reference.fingerprint
        assert comparable_plan_document(optimized) == comparable_plan_document(
            reference
        )

    def test_noisy_profiling_plans_identical(self, cluster16, tiny_tasks):
        """Batched profiling preserves the noise RNG stream exactly."""
        optimized = ExecutionPlanner(cluster16, profile_noise_std=0.05).plan(
            tiny_tasks
        )
        reference = ExecutionPlanner(
            cluster16, profile_noise_std=0.05, optimized=False
        ).plan(tiny_tasks)
        assert optimized.fingerprint == reference.fingerprint
        assert comparable_plan_document(optimized) == comparable_plan_document(
            reference
        )

    def test_planner_shares_one_grid_store(self, cluster16):
        """Allocator and scheduler must use the planner's grid, not copies
        (a fresh grid is empty and therefore falsy — `or`-fallbacks regress)."""
        planner = ExecutionPlanner(cluster16)
        assert planner.allocator.allocation_grid is planner.allocation_grid
        assert planner.scheduler.allocation_grid is planner.allocation_grid

    def test_optimized_flag_not_part_of_the_fingerprint(self, cluster16):
        fast = ExecutionPlanner(cluster16)
        slow = ExecutionPlanner(cluster16, optimized=False)
        assert fast.config_signature() == slow.config_signature()

    def test_repeat_planning_through_one_planner_is_stable(self, cluster16, tiny_tasks):
        """A warm curve cache yields the same plan as a cold one."""
        planner = ExecutionPlanner(cluster16)
        first = planner.plan(tiny_tasks)
        second = planner.plan(tiny_tasks)
        assert comparable_plan_document(first) == comparable_plan_document(second)

    def test_post_event_topologies_plan_identically(self, tiny_tasks):
        """Optimized and reference planners must agree on the irregular,
        heterogeneous topologies elastic events produce — not just on the
        rectangular Fig. 8 grid."""
        from repro.cluster.device import TEST_GPU_SPEC
        from repro.elastic.events import (
            DEVICE_FAILURE,
            NODE_JOIN,
            ClusterEvent,
        )
        from repro.elastic.view import ElasticClusterView

        view = ElasticClusterView(num_nodes=2, devices_per_node=8,
                                  device_spec=TEST_GPU_SPEC)
        view.apply(
            ClusterEvent(DEVICE_FAILURE, at_iteration=1, node=0, device=3)
        )
        view.apply(
            ClusterEvent(
                NODE_JOIN, at_iteration=2, spec=TEST_GPU_SPEC, num_devices=4
            )
        )
        cluster = view.snapshot().topology
        assert cluster.island_sizes == (7, 8, 4)
        optimized = ExecutionPlanner(cluster).plan(tiny_tasks)
        reference = ExecutionPlanner(cluster, optimized=False).plan(tiny_tasks)
        assert optimized.fingerprint == reference.fingerprint
        assert comparable_plan_document(optimized) == comparable_plan_document(
            reference
        )
