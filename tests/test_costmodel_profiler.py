"""Unit tests for the synthetic profiler."""

import pytest

from repro.costmodel.profiler import (
    ProfileSample,
    SyntheticProfiler,
    default_profile_points,
)
from tests.conftest import make_layer_op


class TestDefaultProfilePoints:
    def test_powers_of_two(self):
        assert default_profile_points(16) == [1, 2, 4, 8, 16]

    def test_non_power_of_two_appends_max(self):
        assert default_profile_points(12) == [1, 2, 4, 8, 12]

    def test_single_device(self):
        assert default_profile_points(1) == [1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_profile_points(0)


class TestProfileSample:
    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            ProfileSample(n_devices=0, time_seconds=1.0)
        with pytest.raises(ValueError):
            ProfileSample(n_devices=1, time_seconds=0.0)


class TestSyntheticProfiler:
    def test_profile_matches_timing_model(self, cluster16):
        profiler = SyntheticProfiler(cluster16)
        op = make_layer_op("p", batch=16)
        samples = profiler.profile_operator(op)
        assert [s.n_devices for s in samples] == [1, 2, 4, 8, 16]
        for sample in samples:
            expected = profiler.timing_model.operator_time(op, sample.n_devices)
            assert sample.time_seconds == pytest.approx(expected)

    def test_custom_points(self, cluster16):
        profiler = SyntheticProfiler(cluster16)
        op = make_layer_op("p", batch=16)
        samples = profiler.profile_operator(op, points=[1, 3, 5])
        assert [s.n_devices for s in samples] == [1, 3, 5]

    def test_out_of_range_point_rejected(self, cluster16):
        profiler = SyntheticProfiler(cluster16)
        op = make_layer_op("p")
        with pytest.raises(ValueError):
            profiler.profile_operator(op, points=[32])

    def test_noise_is_reproducible(self, cluster16):
        op = make_layer_op("p", batch=16)
        a = SyntheticProfiler(cluster16, noise_std=0.1, seed=7).profile_operator(op)
        b = SyntheticProfiler(cluster16, noise_std=0.1, seed=7).profile_operator(op)
        c = SyntheticProfiler(cluster16, noise_std=0.1, seed=8).profile_operator(op)
        assert [s.time_seconds for s in a] == [s.time_seconds for s in b]
        assert [s.time_seconds for s in a] != [s.time_seconds for s in c]

    def test_noise_must_be_non_negative(self, cluster16):
        with pytest.raises(ValueError):
            SyntheticProfiler(cluster16, noise_std=-0.1)

    def test_forward_only_profiles_are_cheaper(self, cluster16):
        profiler = SyntheticProfiler(cluster16)
        op = make_layer_op("p", batch=16)
        fwd = profiler.profile_operator(op, include_backward=False)
        full = profiler.profile_operator(op, include_backward=True)
        assert all(f.time_seconds < g.time_seconds for f, g in zip(fwd, full))

    def test_profile_points_helper(self, cluster16):
        assert SyntheticProfiler(cluster16).profile_points() == [1, 2, 4, 8, 16]
